package channel

import (
	"math/bits"

	"rfidest/internal/hash"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// HashMode selects the tag-side hash/persistence implementation the
// TagEngine executes.
type HashMode int

const (
	// IdealRN hashes the tag's prestored random number RN with an ideal
	// 64-bit mixer and makes persistence decisions from hash bits. This is
	// the default: like the paper's scheme it depends only on RN (so tagID
	// distribution is irrelevant by construction) but has no quantization
	// bias.
	IdealRN HashMode = iota
	// IdealID hashes the tagID itself with an ideal mixer. Estimation
	// robustness across T1/T2/T3 under this mode demonstrates that a good
	// hash absorbs any ID distribution.
	IdealID
	// PaperXOR executes §IV-E.2/§IV-E.3: slot selection is
	// bitget(RN ⊕ RS_j, log2(w):1) and persistence compares 10 bits of RN
	// against the broadcast numerator (probability p_n/1024; see
	// hash.PaperPersistence for the off-by-one in the paper's text).
	// Requires power-of-two W.
	PaperXOR
)

// String names the hash mode.
func (m HashMode) String() string {
	switch m {
	case IdealRN:
		return "ideal-rn"
	case IdealID:
		return "ideal-id"
	case PaperXOR:
		return "paper-xor"
	default:
		return "unknown"
	}
}

// TagEngine executes frames by iterating every tag and running the
// tag-side algorithm, giving per-tag fidelity at O(n·k) per frame.
//
// An engine belongs to exactly one reader session and is driven by one
// goroutine: the energy counter is written on every frame without
// synchronization. Pop, however, is only read, so any number of sessions
// may share one population — which is how a shared System supports
// concurrent estimation (it builds a fresh engine per session).
type TagEngine struct {
	Pop  *tags.Population
	Mode HashMode

	// transmissions counts tag responses executed so far (EnergyMeter).
	// A tag whose selected slot lies beyond the observed prefix never
	// reaches it (the reader terminates the frame) and is not counted.
	transmissions int
}

// NewTagEngine returns a per-tag engine over pop using mode.
func NewTagEngine(pop *tags.Population, mode HashMode) *TagEngine {
	return &TagEngine{Pop: pop, Mode: mode}
}

// Size returns the ground-truth cardinality.
func (e *TagEngine) Size() int { return e.Pop.N() }

// RunFrame implements Engine.
func (e *TagEngine) RunFrame(req FrameRequest) BitVec {
	observe := req.validate()
	busy := NewBitVec(req.W)
	e.scatter(req, observe, busy)
	return busy.truncate(observe)
}

// FirstResponse implements Engine. It avoids materializing the frame by
// tracking the minimum selected slot across tags. Only the tags that
// actually reach the air — those in the first busy slot — are charged a
// transmission (the reader terminates the frame there).
func (e *TagEngine) FirstResponse(req FrameRequest, maxScan int) int {
	req.Observe = 0 // first-response scans ignore Observe
	req.validate()
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	min := -1
	txAtMin := 0
	for ti := range e.Pop.Tags {
		tag := &e.Pop.Tags[ti]
		for j := 0; j < req.K; j++ {
			slot, responds := e.tagDecision(tag, req, j)
			if !responds || slot >= maxScan {
				continue
			}
			switch {
			case min == -1 || slot < min:
				min = slot
				txAtMin = 1
			case slot == min:
				txAtMin++
			}
		}
	}
	e.transmissions += txAtMin
	return min
}

// scatter sets the bits of the slots where at least one tag responds and
// meters transmissions within the observed prefix.
func (e *TagEngine) scatter(req FrameRequest, observe int, busy BitVec) {
	for ti := range e.Pop.Tags {
		tag := &e.Pop.Tags[ti]
		for j := 0; j < req.K; j++ {
			slot, responds := e.tagDecision(tag, req, j)
			if responds {
				busy.setBusy(slot)
				if slot < observe {
					e.transmissions++
				}
			}
		}
	}
}

// SlotFor returns the slot that a tag selects for hash j of a frame, under
// the given hash mode — the same computation the engine's tags perform.
// Reader-side protocols that precompute expected slots (missing-tag
// detection) use it so their view of the hash is the engine's by
// construction.
func SlotFor(tag tags.Tag, mode HashMode, dist SlotDist, seed uint64, j, w int) int {
	switch mode {
	case PaperXOR:
		rs := uint32(xrand.Combine(seed, uint64(j)))
		if dist == Geometric {
			return hash.GeometricSlot(uint64(tag.RN^rs), seed, w-1)
		}
		return hash.PaperTagHashW(tag.RN, rs, w)
	case IdealID, IdealRN:
		key := uint64(tag.RN)
		if mode == IdealID {
			key = tag.ID
		}
		seedJ := xrand.Combine(seed, uint64(j))
		if dist == Geometric {
			return hash.GeometricSlot(key, seedJ, w-1)
		}
		return hash.UniformSlot(key, seedJ, w)
	default:
		panic("channel: unknown hash mode")
	}
}

// tagDecision runs the tag-side algorithm for hash j: which slot the tag
// selects and whether it actually responds there (p-persistence).
func (e *TagEngine) tagDecision(tag *tags.Tag, req FrameRequest, j int) (slot int, responds bool) {
	slot = SlotFor(*tag, e.Mode, req.Dist, req.Seed, j, req.W)
	switch e.Mode {
	case PaperXOR:
		rs := uint32(xrand.Combine(req.Seed, uint64(j)))
		pn := int(req.P*1024 + 0.5)
		// The 10 persistence bits must come from RN bits the slot hash does
		// not use (otherwise responders concentrate on a slot subset):
		// slot uses the low log2(w) bits, so rotate the window above them.
		base := uint(bits.Len(uint(req.W)) - 1)
		span := uint(1)
		if base < 22 {
			span = 23 - base
		} else {
			base = 22
		}
		rot := base + (uint(rs>>27)+uint(j))%span
		responds = hash.PaperPersistence(tag.RN, rot, pn)
		return slot, responds
	case IdealID, IdealRN:
		key := uint64(tag.RN)
		if e.Mode == IdealID {
			key = tag.ID
		}
		if req.P >= 1 {
			return slot, true
		}
		if req.P <= 0 {
			return slot, false
		}
		// Persistence from an independent hash stream (the tag's "coin").
		responds = hash.UniformFloat(key, xrand.Combine(req.Seed, uint64(j), 0x9e37)) < req.P
		return slot, responds
	default:
		panic("channel: unknown hash mode")
	}
}
