package channel

// This file retains the pre-packing []bool frame representation as the
// behavioral reference for the word-packed BitVec. It is the one place
// outside tests where []bool frame buffers are allowed (the rfidlint
// boolframe analyzer carves this file out by name): equivalence tests
// cross-check packed engine output and aggregate queries against these
// implementations on randomized frames, and the frame benchmarks use them
// as the speedup baseline. Nothing on the hot path calls into this file.

// refVec is a frame in the reference representation: refVec[i] reports
// whether slot i was busy.
type refVec []bool

// countBusy is the reference CountBusy: one branch per slot.
func (b refVec) countBusy() int {
	n := 0
	for _, busy := range b {
		if busy {
			n++
		}
	}
	return n
}

// countIdle is the reference CountIdle.
func (b refVec) countIdle() int { return len(b) - b.countBusy() }

// rhoIdle is the reference RhoIdle.
func (b refVec) rhoIdle() float64 {
	if len(b) == 0 {
		return 0
	}
	return float64(b.countIdle()) / float64(len(b))
}

// firstBusy is the reference FirstBusy.
func (b refVec) firstBusy() int {
	for i, busy := range b {
		if busy {
			return i
		}
	}
	return -1
}

// firstIdle is the reference FirstIdle: a fully busy frame reports its
// length.
func (b refVec) firstIdle() int {
	for i, busy := range b {
		if !busy {
			return i
		}
	}
	return len(b)
}

// runs is the reference Runs.
func (b refVec) runs() []int {
	var runs []int
	cur := 0
	for _, busy := range b {
		if busy {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// refRunFrame executes one frame exactly as the pre-packing TagEngine did,
// scattering into a []bool. It meters transmissions identically, so a twin
// engine driven through it stays in lockstep with one driven through
// RunFrame.
func (e *TagEngine) refRunFrame(req FrameRequest) refVec {
	observe := req.validate()
	busy := make([]bool, req.W)
	for ti := range e.Pop.Tags {
		tag := &e.Pop.Tags[ti]
		for j := 0; j < req.K; j++ {
			slot, responds := e.tagDecision(tag, req, j)
			if responds {
				busy[slot] = true
				if slot < observe {
					e.transmissions++
				}
			}
		}
	}
	return refVec(busy[:observe])
}

// refRunFrame executes one frame exactly as the pre-packing BallsEngine
// did. It advances the engine's RNG the same way as RunFrame, so twin
// engines with equal seeds replay identical frame sequences through either
// path.
func (e *BallsEngine) refRunFrame(req FrameRequest) refVec {
	observe := req.validate()
	rng := e.frameRNG(req)
	counts := scatterCounts(rng, e.N*req.K, req)
	busy := make(refVec, observe)
	for i := range busy {
		busy[i] = counts[i] > 0
		e.transmissions += counts[i]
	}
	return busy
}
