package channel

import (
	"context"
	"errors"

	"rfidest/internal/obs"
)

// This file defines the round-structured execution model: the unit of
// protocol progress is one round — a reader broadcast followed by one
// frame execution — and an estimation protocol is a Stepper, a resumable
// state machine that plans the next round and absorbs its observation.
//
// The split exists so exactly one loop drives every protocol. StepRound is
// that loop's body: phase transitions, parameter broadcasts, seed draws
// and frame executions all happen here, in a fixed order, so per-round
// context cancellation, observability spans and scheduler interleaving
// compose with every protocol instead of being re-implemented inside each
// one. Protocol code never calls the session verbs directly anymore; it
// describes rounds (RoundSpec) and folds observations (Absorb). The
// roundloop analyzer (internal/analysis) enforces that Plan/Absorb are
// only driven from here and from the interleaving scheduler.

// RoundSpec describes the next protocol round a Stepper wants executed.
// The zero value is a bare frame in the unnamed PhaseRun span with a
// fresh driver-drawn seed and no parameter broadcast.
type RoundSpec struct {
	// Phase attributes the round's traffic to a protocol phase span.
	// Consecutive rounds with the same Phase share one span; a round with
	// a different Phase closes the open span and starts a new one.
	// PhaseRun means "outside any named phase" (no span is opened).
	Phase obs.Phase

	// Report, when non-nil, is invoked on the session observer just
	// before the round's phase transition — BFCE uses it to emit the
	// probe-rounds hook between the probe span's end and the rough
	// span's start, exactly where the monolithic loop emitted it.
	Report func(o obs.Observer)

	// Broadcast is the number of reader parameter bits transmitted
	// before the frame (0 = no broadcast this round).
	Broadcast int

	// Frame is the frame geometry to execute. Frame.Seed is ignored
	// unless ReuseSeed is set: by default the driver draws a fresh seed
	// from the session stream and reports it back through RoundObs.Seed.
	Frame FrameRequest

	// ReuseSeed makes the driver execute Frame with Frame.Seed as given
	// instead of drawing a fresh one. Steppers that pin several rounds to
	// one seed (BFCE's probe) echo the seed they received in a previous
	// RoundObs — keeping the held seed inside the stepper, where
	// Snapshot/Restore can carry it.
	ReuseSeed bool

	// Legacy marks a round that is not a single frame but an entire
	// run-to-completion protocol: the driver dispatches to the stepper's
	// LegacyRunner implementation instead of executing Frame. Used by the
	// estimators package's legacy adapter for protocols not yet converted
	// to native stepping.
	Legacy bool
}

// RoundObs is the observation of one executed round, handed to Absorb.
type RoundObs struct {
	// Frame is the bit vector the reader sensed.
	Frame BitVec
	// Seed is the frame seed the driver used — freshly drawn unless the
	// spec set ReuseSeed. Steppers that need to reuse it echo it back via
	// RoundSpec.Frame.Seed/ReuseSeed.
	Seed uint64
}

// Stepper is a resumable protocol state machine. Plan describes the next
// round; Absorb folds the round's observation and reports whether the
// protocol is complete. Plan is never called after Absorb returns done.
//
// A Stepper never touches the session directly — it holds no Reader, no
// clock and no seed stream — so snapshotting its state suffices to resume
// a run, and a scheduler can interleave many steppers' rounds over their
// own sessions without any cross-talk.
type Stepper interface {
	Plan() RoundSpec
	Absorb(RoundObs) (done bool, err error)
}

// LegacyRunner is implemented by steppers whose single round executes an
// entire run-to-completion protocol over the session (the estimators
// package's legacy adapter). RunLegacy reports done exactly like Absorb.
type LegacyRunner interface {
	RunLegacy(r *Reader) (done bool, err error)
}

// StepRound executes one round of s over the session r: context check,
// pending report hook, phase transition, parameter broadcast, seed
// resolution, frame execution, Absorb. It is the single place protocol
// rounds happen — Drive, the root run loop and the interleaving scheduler
// all funnel through it. A nil ctx skips the cancellation check.
func StepRound(ctx context.Context, r *Reader, s Stepper) (done bool, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	spec := s.Plan()
	if spec.Report != nil {
		spec.Report(r.Observer())
	}
	if spec.Legacy {
		lr, ok := s.(LegacyRunner)
		if !ok {
			return false, errors.New("channel: legacy round from a stepper without RunLegacy")
		}
		return lr.RunLegacy(r)
	}
	if spec.Phase != r.Phase() {
		if spec.Phase == obs.PhaseRun {
			r.EndPhase()
		} else {
			r.StartPhase(spec.Phase)
		}
	}
	if spec.Broadcast > 0 {
		r.BroadcastParams(spec.Broadcast)
	}
	req := spec.Frame
	if !spec.ReuseSeed {
		req.Seed = r.NextSeed()
	}
	vec := r.ExecuteFrame(req)
	return s.Absorb(RoundObs{Frame: vec, Seed: req.Seed}) //lint:allow obspair the span deliberately outlives the round; Drive closes it on every exit
}

// Drive runs s over r to completion, one StepRound at a time, closing any
// open phase span on the way out (normal completion, protocol error or
// context cancellation alike, so observability accounting stays balanced).
// A nil ctx disables cancellation checks; otherwise the context is checked
// before every round — the round in flight always completes, so a
// cancelled run leaves the session's seed stream at a round boundary.
func Drive(ctx context.Context, r *Reader, s Stepper) error {
	if r == nil {
		return errors.New("channel: nil session")
	}
	for {
		done, err := StepRound(ctx, r, s)
		if err != nil {
			r.EndPhase()
			return err
		}
		if done {
			r.EndPhase()
			return nil
		}
	}
}
