package channel

import (
	"rfidest/internal/stats"
	"rfidest/internal/xrand"
)

// NoisyEngine wraps an Engine with a symmetric-error channel model: each
// observed slot is independently misread by the reader. The paper assumes
// a perfect channel (§III-A); this wrapper powers the noise ablation that
// probes how much that assumption carries. Its noise RNG advances per
// observed slot, so — like the engines it wraps — it is single-session,
// single-goroutine state.
type NoisyEngine struct {
	Inner Engine
	// FalseBusy is the probability an idle slot is sensed busy (ambient
	// interference).
	FalseBusy float64
	// FalseIdle is the probability a busy slot is sensed idle (missed
	// backscatter).
	FalseIdle float64
	rng       *xrand.Rand
}

// NewNoisyEngine wraps inner with the given per-slot error rates. The
// range check runs through stats.InClosedUnitInterval so NaN rates are
// rejected too (a NaN fails `< 0 || > 1` because NaN comparisons are
// always false, and a NaN rate would silently disable the noise draw).
func NewNoisyEngine(inner Engine, falseBusy, falseIdle float64, seed uint64) *NoisyEngine {
	if !stats.InClosedUnitInterval(falseBusy) || !stats.InClosedUnitInterval(falseIdle) {
		panic("channel: error rates out of [0,1]")
	}
	return &NoisyEngine{
		Inner:     inner,
		FalseBusy: falseBusy,
		FalseIdle: falseIdle,
		rng:       xrand.NewStream(seed, 0x4015e),
	}
}

// Size implements Engine.
func (e *NoisyEngine) Size() int { return e.Inner.Size() }

// RunFrame implements Engine, flipping each observed slot with the
// configured error rates. Flip decisions are drawn per slot in index order
// (one Bernoulli per slot, keeping the noise stream bit-compatible with the
// reference implementation) and applied as one XOR mask per word.
func (e *NoisyEngine) RunFrame(req FrameRequest) BitVec {
	b := e.Inner.RunFrame(req)
	n := b.Len()
	for wi := 0; wi*64 < n; wi++ {
		word := b.bits.Word(wi)
		width := n - wi*64
		if width > 64 {
			width = 64
		}
		var flip uint64
		for i := 0; i < width; i++ {
			if word>>uint(i)&1 == 1 {
				if e.rng.Bernoulli(e.FalseIdle) {
					flip |= 1 << uint(i)
				}
			} else if e.rng.Bernoulli(e.FalseBusy) {
				flip |= 1 << uint(i)
			}
		}
		if flip != 0 {
			b.bits.XorWord(wi, flip)
		}
	}
	return b
}

// FirstResponse implements Engine. A false-busy slot can pre-empt the true
// first response; a false-idle can hide it (in which case the scan would in
// reality continue — we conservatively fall through to the next true
// response only when the inner engine can report it, i.e. never, so a
// masked response yields the false-busy candidate or -1).
func (e *NoisyEngine) FirstResponse(req FrameRequest, maxScan int) int {
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	truth := e.Inner.FirstResponse(req, maxScan)
	limit := maxScan
	if truth >= 0 {
		limit = truth
	}
	// First false-busy among the idle prefix of length `limit`.
	if e.FalseBusy > 0 {
		g := e.rng.Geometric(e.FalseBusy)
		if g < limit {
			return g
		}
	}
	if truth >= 0 && e.rng.Bernoulli(e.FalseIdle) {
		return -1 // the true first response was missed
	}
	return truth
}
