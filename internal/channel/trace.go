package channel

import "fmt"

// TraceEvent is one reader-side action of a protocol run, as recorded by
// Reader.SetTrace. Traces document protocol structure (what exactly goes
// over the air, in which order) and back the transcript tests that pin
// each estimator's dialogue shape.
type TraceEvent struct {
	// Kind is "broadcast", "frame", "scan" or "probe-slots".
	Kind string
	// Bits is the reader payload for broadcasts.
	Bits int
	// W, K, Observe describe the frame for frame/scan events.
	W, K, Observe int
	// P is the frame persistence probability.
	P float64
	// Busy is the number of busy slots observed (frames), or the first
	// busy position (scans; -1 for an idle scan).
	Busy int
}

// String renders the event compactly.
func (e TraceEvent) String() string {
	switch e.Kind {
	case "broadcast":
		return fmt.Sprintf("broadcast %d bits", e.Bits)
	case "frame":
		return fmt.Sprintf("frame w=%d k=%d p=%.6f observe=%d busy=%d",
			e.W, e.K, e.P, e.Observe, e.Busy)
	case "scan":
		return fmt.Sprintf("scan w=%d firstBusy=%d", e.W, e.Busy)
	case "probe-slots":
		return fmt.Sprintf("listen %d slots", e.Bits)
	default:
		return e.Kind
	}
}

// SetTrace installs a callback invoked for every reader action; nil
// disables tracing. Tracing does not affect costs or outcomes.
func (r *Reader) SetTrace(fn func(TraceEvent)) { r.trace = fn }

func (r *Reader) emit(e TraceEvent) {
	if r.trace != nil {
		r.trace(e)
	}
}
