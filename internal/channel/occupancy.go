package channel

// SlotState is the reader-side view of one framed-Aloha slot when slots are
// long enough (carrying a short payload rather than a single bit) for the
// reader to distinguish collisions — the channel model of the pre-bit-slot
// estimators UPE and EZB [17][18].
type SlotState uint8

const (
	// Empty: no tag transmitted in the slot.
	Empty SlotState = iota
	// Single: exactly one tag transmitted (decodable reply).
	Single
	// Collision: two or more tags transmitted.
	Collision
)

// String names the slot state.
func (s SlotState) String() string {
	switch s {
	case Empty:
		return "empty"
	case Single:
		return "single"
	case Collision:
		return "collision"
	default:
		return "invalid"
	}
}

// Occupancy is a frame observed at slot-state granularity.
type Occupancy []SlotState

// Count returns how many slots are in state s.
func (o Occupancy) Count(s SlotState) int {
	n := 0
	for _, v := range o {
		if v == s {
			n++
		}
	}
	return n
}

// stateOf maps a slot's transmission count to its observed state.
func stateOf(count int) SlotState {
	switch {
	case count == 0:
		return Empty
	case count == 1:
		return Single
	default:
		return Collision
	}
}

// OccupancyEngine is implemented by engines that can also execute frames at
// slot-state granularity. All engines in this package implement it.
type OccupancyEngine interface {
	Engine
	// RunFrameOccupancy executes one frame and returns the empty/single/
	// collision state of the first Observe slots.
	RunFrameOccupancy(req FrameRequest) Occupancy
}

// RunFrameOccupancy implements OccupancyEngine for the per-tag engine.
func (e *TagEngine) RunFrameOccupancy(req FrameRequest) Occupancy {
	observe := req.validate()
	counts := make([]int, req.W)
	for ti := range e.Pop.Tags {
		tag := &e.Pop.Tags[ti]
		for j := 0; j < req.K; j++ {
			slot, responds := e.tagDecision(tag, req, j)
			if responds {
				counts[slot]++
				if slot < observe {
					e.transmissions++
				}
			}
		}
	}
	occ := make(Occupancy, observe)
	for i := range occ {
		occ[i] = stateOf(counts[i])
	}
	return occ
}

// RunFrameOccupancy implements OccupancyEngine for the synthetic engine.
func (e *BallsEngine) RunFrameOccupancy(req FrameRequest) Occupancy {
	observe := req.validate()
	rng := e.frameRNG(req)
	counts := scatterCounts(rng, e.N*req.K, req)
	occ := make(Occupancy, observe)
	for i := range occ {
		occ[i] = stateOf(counts[i])
		e.transmissions += counts[i]
	}
	return occ
}

// RunFrameOccupancy implements OccupancyEngine for the noisy wrapper: an
// empty slot reads as a phantom singleton with probability FalseBusy, and a
// singleton is missed (reads empty) with probability FalseIdle. Collisions
// are loud enough to always be detected.
func (e *NoisyEngine) RunFrameOccupancy(req FrameRequest) Occupancy {
	inner, ok := e.Inner.(OccupancyEngine)
	if !ok {
		panic("channel: inner engine does not support occupancy frames")
	}
	occ := inner.RunFrameOccupancy(req)
	for i, s := range occ {
		switch s {
		case Empty:
			if e.rng.Bernoulli(e.FalseBusy) {
				occ[i] = Single
			}
		case Single:
			if e.rng.Bernoulli(e.FalseIdle) {
				occ[i] = Empty
			}
		}
	}
	return occ
}

// ExecuteFrameOccupancy runs a slot-state frame and charges the clock
// slotBits tag bits per observed slot (Aloha slots carry a short payload,
// unlike 1-bit bit-slots).
func (r *Reader) ExecuteFrameOccupancy(req FrameRequest, slotBits int) Occupancy {
	eng, ok := r.Engine.(OccupancyEngine)
	if !ok {
		panic("channel: engine does not support occupancy frames")
	}
	if slotBits < 1 {
		panic("channel: slotBits must be positive")
	}
	occ := eng.RunFrameOccupancy(req)
	r.clock.Listen(len(occ) * slotBits)
	return occ
}
