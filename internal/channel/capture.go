package channel

import "rfidest/internal/xrand"

// CaptureEngine models the capture effect: when several tags collide in a
// slot, the reader sometimes decodes the strongest reply anyway, so a
// collision is observed as a singleton with probability CaptureProb.
//
// Capture is invisible to bit-slot protocols (busy is busy), but it biases
// every scheme that counts singletons or collisions: UPE under-counts
// collisions (under-estimating n) and an inventory ACKs a tag while the
// losers silently retry. The capture ablation quantifies the first effect;
// the paper's protocols are immune by construction, which this wrapper
// makes testable.
type CaptureEngine struct {
	Inner OccupancyEngine
	// CaptureProb is the probability a collision slot is read as a
	// singleton (typical measured values run 0.1–0.5 depending on
	// geometry and power).
	CaptureProb float64
	rng         *xrand.Rand
}

// NewCaptureEngine wraps inner with the given capture probability.
func NewCaptureEngine(inner OccupancyEngine, captureProb float64, seed uint64) *CaptureEngine {
	if captureProb < 0 || captureProb > 1 {
		panic("channel: capture probability out of [0,1]")
	}
	return &CaptureEngine{
		Inner:       inner,
		CaptureProb: captureProb,
		rng:         xrand.NewStream(seed, 0xca97),
	}
}

// Size implements Engine.
func (e *CaptureEngine) Size() int { return e.Inner.Size() }

// RunFrame implements Engine. Capture does not change busy/idle.
func (e *CaptureEngine) RunFrame(req FrameRequest) BitVec {
	return e.Inner.RunFrame(req)
}

// FirstResponse implements Engine (unchanged by capture).
func (e *CaptureEngine) FirstResponse(req FrameRequest, maxScan int) int {
	return e.Inner.FirstResponse(req, maxScan)
}

// RunFrameOccupancy implements OccupancyEngine: collision slots read as
// Single with probability CaptureProb.
func (e *CaptureEngine) RunFrameOccupancy(req FrameRequest) Occupancy {
	occ := e.Inner.RunFrameOccupancy(req)
	for i, s := range occ {
		if s == Collision && e.rng.Bernoulli(e.CaptureProb) {
			occ[i] = Single
		}
	}
	return occ
}

// TagTransmissions implements EnergyMeter by delegation.
func (e *CaptureEngine) TagTransmissions() int {
	if m, ok := e.Inner.(EnergyMeter); ok {
		return m.TagTransmissions()
	}
	return -1
}
