// Package workload generates dynamic tag-population timelines for
// monitoring experiments: sequences of rounds in which tags arrive and
// depart, expressed as sliding windows over a shared tag universe so that
// consecutive rounds genuinely share the tags that did not move (which is
// what differential estimation and warm-started monitoring exploit).
//
// A Round's population is the window [Start, Start+N) of the universe;
// between rounds, Start advancing models departures (the oldest stock
// ships first) and the window's far end advancing models arrivals.
package workload

import (
	"errors"

	"rfidest/internal/xrand"
)

// Round is one monitoring round's population, as a window over the
// universe.
type Round struct {
	Start int // first universe index present
	N     int // population size
}

// End returns one past the last universe index present.
func (r Round) End() int { return r.Start + r.N }

// Timeline is a sequence of rounds over one universe.
type Timeline struct {
	UniverseSeed uint64
	Rounds       []Round
}

// Departures returns how many tags left between rounds i-1 and i.
func (t *Timeline) Departures(i int) int {
	if i <= 0 || i >= len(t.Rounds) {
		return 0
	}
	return t.Rounds[i].Start - t.Rounds[i-1].Start
}

// Arrivals returns how many tags arrived between rounds i-1 and i.
func (t *Timeline) Arrivals(i int) int {
	if i <= 0 || i >= len(t.Rounds) {
		return 0
	}
	return t.Rounds[i].End() - t.Rounds[i-1].End()
}

// Drift generates a timeline in which, each round, a Binomial(N,
// departRate) batch departs and a Binomial(N, arriveRate) batch arrives.
// With arriveRate == departRate the size performs a mean-preserving random
// walk; unequal rates trend it. Rates must lie in [0, 1); n0 and rounds
// must be positive.
func Drift(rounds, n0 int, arriveRate, departRate float64, seed uint64) (*Timeline, error) {
	if rounds <= 0 || n0 <= 0 {
		return nil, errors.New("workload: rounds and n0 must be positive")
	}
	if arriveRate < 0 || arriveRate >= 1 || departRate < 0 || departRate >= 1 {
		return nil, errors.New("workload: rates must be in [0, 1)")
	}
	rng := xrand.NewStream(seed, 0xd21f7)
	t := &Timeline{UniverseSeed: seed}
	cur := Round{Start: 0, N: n0}
	t.Rounds = append(t.Rounds, cur)
	for i := 1; i < rounds; i++ {
		departs := rng.Binomial(cur.N, departRate)
		arrives := rng.Binomial(cur.N, arriveRate)
		cur = Round{Start: cur.Start + departs, N: cur.N - departs + arrives}
		if cur.N < 1 {
			cur.N = 1
		}
		t.Rounds = append(t.Rounds, cur)
	}
	return t, nil
}

// Burst generates a steady timeline with one bulk departure: at round
// burstAt, a fraction burstFrac of the stock ships at once (the
// unreported-shipment scenario a monitor must catch).
func Burst(rounds, n0, burstAt int, burstFrac float64, seed uint64) (*Timeline, error) {
	if rounds <= 0 || n0 <= 0 {
		return nil, errors.New("workload: rounds and n0 must be positive")
	}
	if burstAt < 1 || burstAt >= rounds {
		return nil, errors.New("workload: burstAt out of (0, rounds)")
	}
	if burstFrac <= 0 || burstFrac >= 1 {
		return nil, errors.New("workload: burstFrac out of (0, 1)")
	}
	t := &Timeline{UniverseSeed: seed}
	cur := Round{Start: 0, N: n0}
	for i := 0; i < rounds; i++ {
		if i == burstAt {
			gone := int(float64(cur.N) * burstFrac)
			cur = Round{Start: cur.Start + gone, N: cur.N - gone}
		}
		t.Rounds = append(t.Rounds, cur)
	}
	return t, nil
}

// Seasonal generates a deterministic timeline whose size swings between n0
// and n0·(1+amplitude) over a period of `period` rounds (receipts on the
// upswing, shipments on the downswing), approximating a weekly stocking
// cycle.
func Seasonal(rounds, n0, period int, amplitude float64, seed uint64) (*Timeline, error) {
	if rounds <= 0 || n0 <= 0 || period <= 1 {
		return nil, errors.New("workload: rounds, n0 and period must be positive (period > 1)")
	}
	if amplitude <= 0 || amplitude > 2 {
		return nil, errors.New("workload: amplitude out of (0, 2]")
	}
	t := &Timeline{UniverseSeed: seed}
	cur := Round{Start: 0, N: n0}
	half := period / 2
	for i := 0; i < rounds; i++ {
		t.Rounds = append(t.Rounds, cur)
		step := int(float64(n0) * amplitude / float64(half))
		if i%period < half {
			cur = Round{Start: cur.Start, N: cur.N + step} // receipts
		} else {
			gone := step
			if gone >= cur.N {
				gone = cur.N - 1
			}
			cur = Round{Start: cur.Start + gone, N: cur.N - gone} // shipments
		}
	}
	t.Rounds = t.Rounds[:rounds]
	return t, nil
}
