package workload

import (
	"math"
	"testing"
)

func TestDriftConservation(t *testing.T) {
	tl, err := Drift(50, 100000, 0.05, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Rounds) != 50 {
		t.Fatalf("rounds = %d", len(tl.Rounds))
	}
	for i := 1; i < len(tl.Rounds); i++ {
		prev, cur := tl.Rounds[i-1], tl.Rounds[i]
		if cur.Start < prev.Start {
			t.Fatalf("round %d: window moved backwards", i)
		}
		if cur.N != prev.N-tl.Departures(i)+tl.Arrivals(i) {
			t.Fatalf("round %d: size inconsistent with arrivals/departures", i)
		}
		if cur.N < 1 {
			t.Fatalf("round %d: empty population", i)
		}
	}
}

func TestDriftBalancedStaysNearN0(t *testing.T) {
	tl, err := Drift(30, 100000, 0.02, 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	last := tl.Rounds[len(tl.Rounds)-1].N
	if math.Abs(float64(last)-100000)/100000 > 0.2 {
		t.Fatalf("balanced drift wandered to %d", last)
	}
}

func TestDriftTrending(t *testing.T) {
	up, err := Drift(30, 50000, 0.05, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	if up.Rounds[29].N <= 50000 {
		t.Fatalf("net-arrival drift did not grow: %d", up.Rounds[29].N)
	}
	down, err := Drift(30, 50000, 0.01, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if down.Rounds[29].N >= 50000 {
		t.Fatalf("net-departure drift did not shrink: %d", down.Rounds[29].N)
	}
}

func TestDriftValidation(t *testing.T) {
	for _, f := range []func() (*Timeline, error){
		func() (*Timeline, error) { return Drift(0, 10, 0.1, 0.1, 1) },
		func() (*Timeline, error) { return Drift(10, 0, 0.1, 0.1, 1) },
		func() (*Timeline, error) { return Drift(10, 10, 1.0, 0.1, 1) },
		func() (*Timeline, error) { return Drift(10, 10, 0.1, -0.1, 1) },
	} {
		if _, err := f(); err == nil {
			t.Fatal("invalid drift accepted")
		}
	}
}

func TestBurst(t *testing.T) {
	tl, err := Burst(10, 100000, 4, 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Rounds[3].N != 100000 {
		t.Fatalf("pre-burst size %d", tl.Rounds[3].N)
	}
	if tl.Rounds[4].N != 70000 {
		t.Fatalf("post-burst size %d", tl.Rounds[4].N)
	}
	if tl.Departures(4) != 30000 || tl.Arrivals(4) != 0 {
		t.Fatalf("burst movement: dep=%d arr=%d", tl.Departures(4), tl.Arrivals(4))
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := Burst(10, 100, 0, 0.5, 1); err == nil {
		t.Fatal("burstAt=0 accepted")
	}
	if _, err := Burst(10, 100, 5, 1.5, 1); err == nil {
		t.Fatal("burstFrac>1 accepted")
	}
}

func TestSeasonalCycles(t *testing.T) {
	tl, err := Seasonal(20, 50000, 10, 0.4, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Rounds) != 20 {
		t.Fatalf("rounds = %d", len(tl.Rounds))
	}
	// Peak near mid-cycle should exceed n0; trough should return near n0.
	peak := tl.Rounds[5].N
	if peak <= 50000 {
		t.Fatalf("no upswing: peak %d", peak)
	}
	trough := tl.Rounds[10].N
	if float64(trough) > 1.1*50000 {
		t.Fatalf("no downswing: trough %d", trough)
	}
	for i := range tl.Rounds {
		if tl.Rounds[i].N < 1 {
			t.Fatalf("round %d empty", i)
		}
	}
}

func TestSeasonalValidation(t *testing.T) {
	if _, err := Seasonal(10, 100, 1, 0.5, 1); err == nil {
		t.Fatal("period=1 accepted")
	}
	if _, err := Seasonal(10, 100, 4, 3, 1); err == nil {
		t.Fatal("amplitude=3 accepted")
	}
}

func TestEdgeAccessors(t *testing.T) {
	tl := &Timeline{Rounds: []Round{{0, 10}, {2, 12}}}
	if tl.Departures(0) != 0 || tl.Arrivals(0) != 0 {
		t.Fatal("round 0 has no predecessor")
	}
	if tl.Departures(5) != 0 || tl.Arrivals(5) != 0 {
		t.Fatal("out-of-range round must report zero movement")
	}
	if tl.Departures(1) != 2 || tl.Arrivals(1) != 4 {
		t.Fatalf("movement = %d/%d", tl.Departures(1), tl.Arrivals(1))
	}
	if (Round{3, 7}).End() != 10 {
		t.Fatal("End wrong")
	}
}
