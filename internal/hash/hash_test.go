package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniform64SeedsDiffer(t *testing.T) {
	if Uniform64(123, 1) == Uniform64(123, 2) {
		t.Fatal("different seeds produced the same hash")
	}
	if Uniform64(123, 1) != Uniform64(123, 1) {
		t.Fatal("hash is not deterministic")
	}
}

func TestUniformSlotRange(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 1024, 8192, 1000003} {
		for x := uint64(0); x < 1000; x++ {
			s := UniformSlot(x, 99, w)
			if s < 0 || s >= w {
				t.Fatalf("UniformSlot(%d, 99, %d) = %d out of range", x, w, s)
			}
		}
	}
}

func TestUniformSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformSlot(_,_,0) did not panic")
		}
	}()
	UniformSlot(1, 1, 0)
}

func TestUniformSlotUniformity(t *testing.T) {
	const w, trials = 64, 640000
	counts := make([]int, w)
	for x := 0; x < trials; x++ {
		counts[UniformSlot(uint64(x), 7, w)]++
	}
	want := float64(trials) / w
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("slot %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestUniformSlotUniformityNonPow2(t *testing.T) {
	const w, trials = 10, 500000
	counts := make([]int, w)
	for x := 0; x < trials; x++ {
		counts[UniformSlot(uint64(x), 11, w)]++
	}
	want := float64(trials) / w
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("slot %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestUniformFloatRange(t *testing.T) {
	for x := uint64(0); x < 100000; x++ {
		f := UniformFloat(x, 3)
		if f < 0 || f >= 1 {
			t.Fatalf("UniformFloat out of range: %v", f)
		}
	}
}

func TestUniformFloatMean(t *testing.T) {
	const trials = 200000
	sum := 0.0
	for x := 0; x < trials; x++ {
		sum += UniformFloat(uint64(x), 5)
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("UniformFloat mean = %v", mean)
	}
}

func TestGeometricSlotDistribution(t *testing.T) {
	const trials = 400000
	counts := make([]int, 33)
	for x := 0; x < trials; x++ {
		j := GeometricSlot(uint64(x), 13, 32)
		if j < 0 || j > 32 {
			t.Fatalf("GeometricSlot out of range: %d", j)
		}
		counts[j]++
	}
	for j := 0; j < 10; j++ {
		want := float64(trials) * math.Pow(0.5, float64(j+1))
		if math.Abs(float64(counts[j])-want) > 6*math.Sqrt(want) {
			t.Fatalf("GeometricSlot P(%d): got %d, want ~%v", j, counts[j], want)
		}
	}
}

func TestGeometricSlotCap(t *testing.T) {
	for x := uint64(0); x < 100000; x++ {
		if j := GeometricSlot(x, 1, 4); j > 4 {
			t.Fatalf("GeometricSlot exceeded cap: %d", j)
		}
	}
}

func TestPaperTagHashRange(t *testing.T) {
	f := func(rn, rs uint32) bool {
		h := PaperTagHash(rn, rs)
		return h >= 0 && h < 8192
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTagHashMatchesW8192(t *testing.T) {
	f := func(rn, rs uint32) bool {
		return PaperTagHash(rn, rs) == PaperTagHashW(rn, rs, 8192)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTagHashWPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PaperTagHashW(.., 100) did not panic")
		}
	}()
	PaperTagHashW(1, 1, 100)
}

func TestPaperTagHashXORProperty(t *testing.T) {
	// H(rn, rs) depends only on rn ⊕ rs: shifting both by the same mask
	// must not change the hash.
	f := func(rn, rs, m uint32) bool {
		return PaperTagHash(rn^m, rs^m) == PaperTagHash(rn, rs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTagHashUniformOverRandomRN(t *testing.T) {
	// With uniformly random RN (as prestored on tags), the hash must be
	// uniform over [0, 8192) regardless of the seed.
	const trials = 819200
	counts := make([]int, 8192)
	rn := uint32(0x12345678)
	for i := 0; i < trials; i++ {
		rn = rn*1664525 + 1013904223 // LCG as a stand-in RN sequence
		counts[PaperTagHash(rn, 0xdeadbeef)]++
	}
	want := float64(trials) / 8192
	bad := 0
	for _, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			bad++
		}
	}
	if bad > 8192/100 {
		t.Fatalf("%d of 8192 buckets deviate by >5 sigma", bad)
	}
}

func TestPaperPersistenceProbability(t *testing.T) {
	// Over uniform RN the corrected rule fires with probability pn/1024.
	const trials = 400000
	for _, pn := range []int{1, 2, 8, 512, 1024} {
		hits := 0
		rn := uint32(0xace1)
		for i := 0; i < trials; i++ {
			rn = rn*1664525 + 1013904223
			if PaperPersistence(rn, uint(i), pn) {
				hits++
			}
		}
		got := float64(hits) / trials
		want := float64(pn) / 1024
		if want > 1 {
			want = 1
		}
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("PaperPersistence(pn=%d) rate %v, want %v", pn, got, want)
		}
	}
}

func TestPaperPersistenceLiteralBias(t *testing.T) {
	// The literal paper text fires with probability (pn-1)/1024 — one
	// numerator step low; at pn=1 it never responds at all.
	const trials = 400000
	for _, pn := range []int{1, 6, 512} {
		hits := 0
		rn := uint32(0xbee5)
		for i := 0; i < trials; i++ {
			rn = rn*1664525 + 1013904223
			if PaperPersistenceLiteral(rn, uint(i), pn) {
				hits++
			}
		}
		got := float64(hits) / trials
		want := float64(pn-1) / 1024
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("PaperPersistenceLiteral(pn=%d) rate %v, want %v", pn, got, want)
		}
	}
}

func BenchmarkUniformSlot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = UniformSlot(uint64(i), 7, 8192)
	}
}

func BenchmarkPaperTagHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PaperTagHash(uint32(i), 0x5555aaaa)
	}
}
