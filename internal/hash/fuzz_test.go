package hash

import "testing"

// FuzzUniformSlotRange: slots stay in range for arbitrary keys, seeds and
// widths, and the mapping is deterministic.
func FuzzUniformSlotRange(f *testing.F) {
	f.Add(uint64(0), uint64(0), 1)
	f.Add(uint64(1<<63), uint64(42), 8192)
	f.Add(^uint64(0), ^uint64(0), 3)
	f.Fuzz(func(t *testing.T, x, seed uint64, wRaw int) {
		w := wRaw % (1 << 20)
		if w <= 0 {
			w = 1
		}
		s := UniformSlot(x, seed, w)
		if s < 0 || s >= w {
			t.Fatalf("UniformSlot(%d, %d, %d) = %d", x, seed, w, s)
		}
		if s != UniformSlot(x, seed, w) {
			t.Fatal("UniformSlot not deterministic")
		}
	})
}

// FuzzPaperTagHashInvariants: the tag-side hash stays in [0, 8192) and
// depends only on RN ⊕ RS.
func FuzzPaperTagHashInvariants(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(0xffffffff), uint32(0x5555aaaa), uint32(0x12345678))
	f.Fuzz(func(t *testing.T, rn, rs, mask uint32) {
		h := PaperTagHash(rn, rs)
		if h < 0 || h >= 8192 {
			t.Fatalf("hash out of range: %d", h)
		}
		if PaperTagHash(rn^mask, rs^mask) != h {
			t.Fatal("hash depends on more than RN ⊕ RS")
		}
	})
}

// FuzzGeometricSlotCap: geometric slots never exceed the cap.
func FuzzGeometricSlotCap(f *testing.F) {
	f.Add(uint64(7), uint64(13), 32)
	f.Add(uint64(0), uint64(0), 1)
	f.Fuzz(func(t *testing.T, x, seed uint64, maxRaw int) {
		max := maxRaw % 64
		if max < 0 {
			max = -max % 64
		}
		if j := GeometricSlot(x, seed, max); j < 0 || j > max {
			t.Fatalf("GeometricSlot = %d with cap %d", j, max)
		}
	})
}
