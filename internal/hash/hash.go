// Package hash provides the hashing substrate shared by every estimator in
// the repository.
//
// RFID counting protocols are built on the assumption that each tag can map
// (tagID, seed) pairs to uniformly distributed values. Real C1G2-class tags
// cannot run cryptographic hashes, so the BFCE paper (§IV-E.2) proposes a
// lightweight tag-side scheme: a 32-bit random number RN is prestored on
// each tag and the hash is the low 13 bits of RN ⊕ RS where RS is a seed
// broadcast by the reader. This package implements both that literal scheme
// (PaperTagHash) and an idealized seeded hash (IDHash) built on a SplitMix64
// finalizer, plus the slot-selection helpers the protocols need (uniform
// slot, geometric "lottery" slot, and p-persistence decisions).
package hash

import "rfidest/internal/xrand"

// Uniform64 hashes the pair (x, seed) to a uniformly distributed 64-bit
// value. Different seeds give independent hash functions over the same key
// space, which is how protocols obtain their k "independent hash functions".
func Uniform64(x, seed uint64) uint64 {
	return xrand.Mix64(xrand.Mix64(x^0x51_7c_c1_b7_27_22_0a_95) ^ seed)
}

// UniformSlot maps (x, seed) to a slot index in [0, w). w must be positive.
// The mapping is unbiased for any w (fixed-point multiply of the 64-bit
// hash), not just powers of two.
func UniformSlot(x, seed uint64, w int) int {
	if w <= 0 {
		panic("hash: UniformSlot with non-positive w")
	}
	h := Uniform64(x, seed)
	// Multiply-shift range reduction: floor(h/2^64 * w). The bias for
	// w << 2^64 is negligible (< w/2^64) and, unlike masking, works for
	// arbitrary w.
	hi, _ := mul64(h, uint64(w))
	return int(hi)
}

// UniformFloat maps (x, seed) to a float in [0, 1) with 53 bits of
// precision. Protocols use it for hash-based persistence decisions, where a
// tag participates iff UniformFloat(id, seed) < p.
func UniformFloat(x, seed uint64) float64 {
	return float64(Uniform64(x, seed)>>11) / (1 << 53)
}

// GeometricSlot maps (x, seed) to a slot index j >= 0 with
// P(j = t) = 2^{-(t+1)}, the geometric distribution used by lottery-frame
// protocols (LOF, PET): slot j is chosen iff the hash has exactly j leading
// zero... more precisely, j trailing failures of a fair coin derived from
// the hash bits. The result is capped at max (the last frame slot absorbs
// the tail), matching how a finite lottery frame is used in practice.
func GeometricSlot(x, seed uint64, max int) int {
	h := Uniform64(x, seed)
	j := 0
	for j < max && h&1 == 0 {
		h >>= 1
		j++
		if j%64 == 0 {
			// Extremely unlikely with max <= 64; rehash for longer runs.
			h = Uniform64(x, seed+uint64(j))
		}
	}
	return j
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// PaperTagHash is the tag-side hash of BFCE §IV-E.2:
//
//	H(id) = bitget(RN ⊕ RS, 13:1)
//
// i.e. the low 13 bits of the XOR of the tag's prestored 32-bit random
// number with the broadcast 32-bit random seed, yielding a slot in
// [0, 8192). It requires only a bitwise XOR and a mask on the tag.
func PaperTagHash(rn, rs uint32) int {
	return int((rn ^ rs) & 0x1fff)
}

// PaperTagHashW generalizes PaperTagHash to Bloom vectors of any power-of-two
// length w (the paper fixes w = 8192 = 2^13; the w ablation needs other
// sizes). It panics if w is not a power of two in [2, 2^32].
func PaperTagHashW(rn, rs uint32, w int) int {
	if w <= 1 || w&(w-1) != 0 {
		panic("hash: PaperTagHashW requires a power-of-two w > 1")
	}
	return int((rn ^ rs) & uint32(w-1))
}

// PaperPersistence is the tag-side p-persistence rule of §IV-E.3: the tag
// selects 10 bits from its prestored random number (here: 10 bits of RN
// rotated by a per-slot amount so consecutive decisions differ) and
// responds iff the selected value is at most pn−1, giving response
// probability pn/1024 for pn in [1, 1024] — the probability the reader's
// estimate inverts.
//
// The paper's text says "smaller than p_n−1", which would give probability
// (pn−1)/1024 and bias the final estimate by a factor (pn−1)/pn — a 17%
// under-estimate at the small numerators (pn ≈ 6) the optimal-p search
// produces for large populations. That reading cannot be what the authors
// ran (their Fig. 7 shows sub-ε accuracy), so we treat it as an off-by-one
// typo for "not larger than p_n−1"; PaperPersistenceLiteral preserves the
// literal text for the bias study.
func PaperPersistence(rn uint32, rot uint, pn int) bool {
	v := (rn >> (rot % 23)) & 0x3ff // 10 bits
	return int(v) < pn
}

// PaperPersistenceLiteral is §IV-E.3 exactly as printed ("smaller than
// p_n−1"): response probability (pn−1)/1024. Kept to quantify the
// off-by-one bias PaperPersistence documents.
func PaperPersistenceLiteral(rn uint32, rot uint, pn int) bool {
	v := (rn >> (rot % 23)) & 0x3ff // 10 bits
	return int(v) < pn-1
}
