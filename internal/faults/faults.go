// Package faults layers deterministic, seeded fault injectors on a
// channel.Engine. The paper assumes a perfect channel (§III-A); this
// package is the adversarial half of that ablation — four reader-side
// failure modes the literature observes in dense deployments, composed
// behind the same Engine interface the estimators already speak:
//
//   - burst noise: a Gilbert–Elliott two-state Markov channel flips
//     observed slots, generalizing the i.i.d. NoisyEngine (errors cluster
//     in bad states instead of arriving independently);
//   - slot erasure: a busy slot's backscatter is lost entirely and reads
//     idle (the asymmetric error a weak tag signal produces);
//   - truncation: a frame's observation tail is lost to desynchronization
//     and reads idle from the cut point on;
//   - stalls: the reader stalls mid-frame (retransmission, recovery) and
//     burns extra air time that the session clock is charged for through
//     the channel.Staller drain.
//
// Everything is deterministic: each injector draws from its own
// xrand stream derived from the engine seed, so equal (plan, seed) pairs
// replay identical fault schedules regardless of what other sessions are
// in flight — the property the fleet acceptance tests pin. A zero Plan
// injects nothing, and the wrapper is not installed at all in that case,
// so the fault machinery is provably passive by default.
package faults

import (
	"fmt"
	"math/bits"

	"rfidest/internal/channel"
	"rfidest/internal/obs"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
	"rfidest/internal/xrand"
)

// Plan configures the injectors. The zero value injects nothing.
type Plan struct {
	// Gilbert–Elliott burst noise: the channel alternates between a good
	// and a bad state per observed slot. BurstFlipGood/Bad are the per-slot
	// flip probabilities in each state; BurstPGB and BurstPBG are the
	// good→bad and bad→good transition probabilities.
	BurstFlipGood float64
	BurstFlipBad  float64
	BurstPGB      float64
	BurstPBG      float64

	// ErasureRate is the per-busy-slot probability the backscatter is lost
	// and the slot reads idle.
	ErasureRate float64

	// TruncRate is the per-frame probability the observation desynchronizes;
	// a truncated frame loses its trailing TruncTail fraction (the tail
	// reads idle).
	TruncRate float64
	TruncTail float64

	// StallRate is the per-engine-call probability the reader stalls;
	// each stall charges StallSlots extra slot-times (plus one recovery
	// interval) to the session clock.
	StallRate  float64
	StallSlots int
}

// Enabled reports whether the plan injects anything. A disabled plan's
// engine wrapper is never installed, keeping the default path untouched.
func (p Plan) Enabled() bool {
	return p.BurstFlipGood > 0 || p.BurstFlipBad > 0 ||
		p.ErasureRate > 0 || p.TruncRate > 0 || p.StallRate > 0
}

// Validate rejects degenerate plans. All probabilities run through
// stats.InClosedUnitInterval, so NaN — which passes a negated range check —
// is rejected along with ±Inf and out-of-range values.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"BurstFlipGood", p.BurstFlipGood},
		{"BurstFlipBad", p.BurstFlipBad},
		{"BurstPGB", p.BurstPGB},
		{"BurstPBG", p.BurstPBG},
		{"ErasureRate", p.ErasureRate},
		{"TruncRate", p.TruncRate},
		{"TruncTail", p.TruncTail},
		{"StallRate", p.StallRate},
	}
	for _, f := range probs {
		if !stats.InClosedUnitInterval(f.v) {
			return fmt.Errorf("faults: %s = %v outside [0, 1]", f.name, f.v)
		}
	}
	if p.StallSlots < 0 {
		return fmt.Errorf("faults: StallSlots = %d negative", p.StallSlots)
	}
	if p.StallRate > 0 && p.StallSlots == 0 {
		return fmt.Errorf("faults: StallRate %v with zero StallSlots", p.StallRate)
	}
	if (p.BurstFlipGood > 0 || p.BurstFlipBad > 0) && p.BurstPBG <= 0 && p.BurstPGB > 0 {
		return fmt.Errorf("faults: burst chain can enter the bad state but never leave it (BurstPBG = %v)", p.BurstPBG)
	}
	return nil
}

// Severity is the one-knob plan used by the CLIs and benches: rate in
// [0, 1] scales every injector together. Severity(0) is the zero Plan.
func Severity(rate float64) Plan {
	if !stats.InClosedUnitInterval(rate) {
		panic(fmt.Sprintf("faults: severity %v outside [0, 1]", rate))
	}
	if rate == 0 { //lint:allow floatcmp exact zero-value check for the disabled knob; no arithmetic feeds it
		return Plan{}
	}
	return Plan{
		BurstFlipGood: 0.001 * rate,
		BurstFlipBad:  0.25 * rate,
		BurstPGB:      0.02 * rate,
		BurstPBG:      0.2,
		ErasureRate:   0.05 * rate,
		TruncRate:     0.1 * rate,
		TruncTail:     0.25,
		StallRate:     0.1 * rate,
		StallSlots:    64,
	}
}

// Stats counts the fault events an Engine applied. It aliases the obs
// type so injector output feeds observers without conversion.
type Stats = obs.FaultStats

// Engine wraps a channel.Engine with the plan's injectors. Like every
// engine it is single-session, single-goroutine state: the burst chain,
// the injector RNG streams and the stall ledger all advance per call.
type Engine struct {
	inner channel.Engine
	plan  Plan

	burst *xrand.Rand
	erase *xrand.Rand
	trunc *xrand.Rand
	stall *xrand.Rand

	bad     bool // Gilbert–Elliott chain state
	pending timing.Cost
	stats   Stats
}

// New wraps inner with the plan's injectors, drawing all fault randomness
// from streams derived from seed. It panics on an invalid plan, matching
// NewNoisyEngine's contract.
func New(inner channel.Engine, plan Plan, seed uint64) *Engine {
	if err := plan.Validate(); err != nil {
		panic(err.Error())
	}
	return &Engine{
		inner: inner,
		plan:  plan,
		burst: xrand.NewStream(seed, 0xb025),
		erase: xrand.NewStream(seed, 0xe2a5),
		trunc: xrand.NewStream(seed, 0x7240),
		stall: xrand.NewStream(seed, 0x57a1),
	}
}

// Size implements channel.Engine.
func (e *Engine) Size() int { return e.inner.Size() }

// FaultStats returns the cumulative fault counters of the session.
func (e *Engine) FaultStats() Stats { return e.stats }

// TakeStall implements channel.Staller: it drains the stall cost accrued
// since the last engine call.
func (e *Engine) TakeStall() timing.Cost {
	c := e.pending
	e.pending = timing.Cost{}
	return c
}

// TagTransmissions implements channel.EnergyMeter by delegation: faults
// are reader-side phenomena; tags transmit the same either way.
func (e *Engine) TagTransmissions() int {
	if m, ok := e.inner.(channel.EnergyMeter); ok {
		return m.TagTransmissions()
	}
	return -1
}

// burstFlip advances the Gilbert–Elliott chain one slot and reports
// whether the slot's observation flips. The draw order (flip, then
// transition) is fixed and state-independent, so the stream consumption
// per slot is constant and the schedule replays exactly.
func (e *Engine) burstFlip() bool {
	p := e.plan.BurstFlipGood
	if e.bad {
		p = e.plan.BurstFlipBad
	}
	flip := e.burst.Bernoulli(p)
	if e.bad {
		if e.burst.Bernoulli(e.plan.BurstPBG) {
			e.bad = false
		}
	} else if e.burst.Bernoulli(e.plan.BurstPGB) {
		e.bad = true
	}
	return flip
}

func (e *Engine) burstEnabled() bool {
	return e.plan.BurstFlipGood > 0 || e.plan.BurstFlipBad > 0
}

// RunFrame implements channel.Engine: the inner observation passes through
// burst noise, then erasure, then truncation, and may accrue a stall. The
// injector order is fixed — it is part of the deterministic schedule.
func (e *Engine) RunFrame(req channel.FrameRequest) channel.BitVec {
	b := e.inner.RunFrame(req)
	e.stats.Frames++
	n := b.Len()

	if e.burstEnabled() {
		for wi := 0; wi*64 < n; wi++ {
			width := n - wi*64
			if width > 64 {
				width = 64
			}
			var flip uint64
			for i := 0; i < width; i++ {
				if e.burstFlip() {
					flip |= 1 << uint(i)
				}
			}
			if flip != 0 {
				b.XorWord(wi, flip)
				e.stats.BurstFlips += bits.OnesCount64(flip)
			}
		}
	}

	if e.plan.ErasureRate > 0 {
		// One draw per busy slot, in index order: a busy slot's backscatter
		// is lost with probability ErasureRate; idle slots cannot erase.
		for wi := 0; wi*64 < n; wi++ {
			word := b.Word(wi)
			if word == 0 {
				continue
			}
			var clear uint64
			for w := word; w != 0; w &= w - 1 {
				bit := w & -w
				if e.erase.Bernoulli(e.plan.ErasureRate) {
					clear |= bit
				}
			}
			if clear != 0 {
				b.XorWord(wi, clear)
				e.stats.Erasures += bits.OnesCount64(clear)
			}
		}
	}

	if e.plan.TruncRate > 0 && e.trunc.Bernoulli(e.plan.TruncRate) {
		keep := n - int(float64(n)*e.plan.TruncTail)
		b.ClearFrom(keep)
		e.stats.Truncations++
	}

	e.maybeStall()
	return b
}

// FirstResponse implements channel.Engine. Burst flips and erasures apply
// to the scanned prefix exactly as they would in a materialized frame: a
// flipped idle slot pre-empts the true response, and a flipped or erased
// true response is missed (-1) — the scan cannot continue past a reply it
// never heard. Truncation does not apply (there is no observation tail).
func (e *Engine) FirstResponse(req channel.FrameRequest, maxScan int) int {
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	truth := e.inner.FirstResponse(req, maxScan)
	e.stats.Frames++
	limit := maxScan
	if truth >= 0 {
		limit = truth
	}
	pos := truth
	if e.burstEnabled() {
		for i := 0; i < limit; i++ {
			if e.burstFlip() {
				e.stats.BurstFlips++
				pos = i
				break
			}
		}
	}
	if pos == truth && truth >= 0 {
		missed := false
		if e.burstEnabled() && e.burstFlip() {
			e.stats.BurstFlips++
			missed = true
		}
		if !missed && e.plan.ErasureRate > 0 && e.erase.Bernoulli(e.plan.ErasureRate) {
			e.stats.Erasures++
			missed = true
		}
		if missed {
			pos = -1
		}
	}
	e.maybeStall()
	return pos
}

// maybeStall draws one stall decision for the completed engine call and
// accrues its recovery cost for the Reader to drain.
func (e *Engine) maybeStall() {
	if e.plan.StallRate > 0 && e.stall.Bernoulli(e.plan.StallRate) {
		e.pending.Add(timing.Cost{TagSlots: e.plan.StallSlots, Intervals: 1})
		e.stats.Stalls++
		e.stats.StallSlots += e.plan.StallSlots
	}
}
