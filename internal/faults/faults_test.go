package faults

import (
	"math"
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/timing"
)

// fixed is a deterministic inner engine: every frame observes the same
// busy pattern (zero-padded to the observed width).
type fixed struct{ busy []bool }

func (f fixed) RunFrame(req channel.FrameRequest) channel.BitVec {
	n := req.Observe
	if n == 0 {
		n = req.W
	}
	out := make([]bool, n)
	copy(out, f.busy)
	return channel.FromBools(out)
}

func (f fixed) FirstResponse(req channel.FrameRequest, maxScan int) int {
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	for i := 0; i < maxScan && i < len(f.busy); i++ {
		if f.busy[i] {
			return i
		}
	}
	return -1
}

func (f fixed) Size() int { return len(f.busy) }

func pattern(n int, everyKthBusy int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = i%everyKthBusy == 0
	}
	return b
}

func req(w int) channel.FrameRequest {
	return channel.FrameRequest{W: w, K: 1, P: 1, Seed: 1}
}

func TestZeroPlanDisabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan enabled")
	}
	if Severity(0).Enabled() {
		t.Fatal("Severity(0) enabled")
	}
	if !Severity(0.5).Enabled() {
		t.Fatal("Severity(0.5) disabled")
	}
	if err := Severity(1).Validate(); err != nil {
		t.Fatalf("Severity(1) invalid: %v", err)
	}
}

func TestValidateRejectsDegenerate(t *testing.T) {
	nan := math.NaN()
	bad := []Plan{
		{BurstFlipGood: nan},
		{ErasureRate: nan},
		{TruncRate: math.Inf(1)},
		{TruncTail: -0.1},
		{StallRate: 1.5},
		{StallSlots: -1},
		{StallRate: 0.5}, // stalls enabled but zero slots charged
		{BurstFlipGood: 0.1, BurstPGB: 0.5, BurstPBG: 0}, // absorbing bad state
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: degenerate plan accepted: %+v", i, p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a NaN plan")
		}
	}()
	New(fixed{}, Plan{ErasureRate: nan}, 1)
}

func TestSeverityRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Severity accepted NaN")
		}
	}()
	Severity(math.NaN())
}

func TestErasureOnlyClearsBusySlots(t *testing.T) {
	inner := fixed{busy: pattern(256, 2)}
	e := New(inner, Plan{ErasureRate: 0.5}, 7)
	before := inner.RunFrame(req(256))
	after := e.RunFrame(req(256))
	erased := 0
	for i := 0; i < 256; i++ {
		if after.Get(i) && !before.Get(i) {
			t.Fatalf("erasure created a busy slot at %d", i)
		}
		if before.Get(i) && !after.Get(i) {
			erased++
		}
	}
	if erased == 0 {
		t.Fatal("0.5 erasure rate erased nothing over 128 busy slots")
	}
	if got := e.FaultStats().Erasures; got != erased {
		t.Fatalf("stats count %d erasures, frame shows %d", got, erased)
	}
}

func TestTruncationClearsTail(t *testing.T) {
	inner := fixed{busy: pattern(64, 1)} // all busy
	e := New(inner, Plan{TruncRate: 1, TruncTail: 0.25}, 3)
	b := e.RunFrame(req(64))
	for i := 0; i < 48; i++ {
		if !b.Get(i) {
			t.Fatalf("slot %d before the cut was cleared", i)
		}
	}
	for i := 48; i < 64; i++ {
		if b.Get(i) {
			t.Fatalf("slot %d past the cut still busy", i)
		}
	}
	if e.FaultStats().Truncations != 1 {
		t.Fatalf("truncations = %d", e.FaultStats().Truncations)
	}
}

func TestBurstNoiseDeterministicPerSeed(t *testing.T) {
	plan := Plan{BurstFlipGood: 0.01, BurstFlipBad: 0.3, BurstPGB: 0.05, BurstPBG: 0.2}
	inner := fixed{busy: pattern(1024, 3)}
	a := New(inner, plan, 42).RunFrame(req(1024))
	b := New(inner, plan, 42).RunFrame(req(1024))
	if !a.Equal(b) {
		t.Fatal("same (plan, seed) produced different frames")
	}
	c := New(inner, plan, 43).RunFrame(req(1024))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical 1024-slot fault schedules")
	}
	e := New(inner, plan, 42)
	e.RunFrame(req(1024))
	if e.FaultStats().BurstFlips == 0 {
		t.Fatal("burst model flipped nothing over 1024 slots")
	}
}

func TestStallChargesClockThroughReader(t *testing.T) {
	plan := Plan{StallRate: 1, StallSlots: 64}
	e := New(fixed{busy: pattern(32, 2)}, plan, 5)
	r := channel.NewReader(e, 6)
	r.ExecuteFrame(req(32))
	cost := r.Cost()
	if cost.TagSlots != 32+64 {
		t.Fatalf("clock charged %d slots, want frame 32 + stall 64", cost.TagSlots)
	}
	if cost.Intervals != 2 { // listen turnaround + stall recovery
		t.Fatalf("clock charged %d intervals, want 2", cost.Intervals)
	}
	if c := e.TakeStall(); c != (timing.Cost{}) {
		t.Fatalf("stall ledger not drained: %+v", c)
	}
	st := e.FaultStats()
	if st.Stalls != 1 || st.StallSlots != 64 {
		t.Fatalf("stall stats %+v", st)
	}
}

func TestFirstResponsePreemptAndMiss(t *testing.T) {
	inner := fixed{busy: append(make([]bool, 10), true)} // first busy at 10
	// Certain flip in the good state: slot 0 pre-empts the true response.
	pre := New(inner, Plan{BurstFlipGood: 1, BurstPBG: 1}, 9)
	if got := pre.FirstResponse(req(64), 64); got != 0 {
		t.Fatalf("certain false-busy returned %d, want 0", got)
	}
	// Certain erasure: the true response is missed.
	miss := New(inner, Plan{ErasureRate: 1}, 9)
	if got := miss.FirstResponse(req(64), 64); got != -1 {
		t.Fatalf("certain erasure returned %d, want -1", got)
	}
	// No faults on the scanned path: truth passes through.
	clean := New(inner, Plan{TruncRate: 1, TruncTail: 0.5}, 9)
	if got := clean.FirstResponse(req(64), 64); got != 10 {
		t.Fatalf("truncation-only scan returned %d, want 10", got)
	}
}

func TestEnergyPassthrough(t *testing.T) {
	e := New(fixed{}, Plan{ErasureRate: 0.1}, 1)
	if got := e.TagTransmissions(); got != -1 {
		t.Fatalf("unmetered inner reported %d", got)
	}
}
