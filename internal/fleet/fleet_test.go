package fleet

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"rfidest"
)

// mixedBatch builds a small mixed workload: shared and private Systems of
// several variants crossed with two estimators.
func mixedBatch(t testing.TB) []Job {
	t.Helper()
	shared := rfidest.NewSystem(30000, rfidest.WithSeed(5), rfidest.WithSynthetic())
	tagLevel := rfidest.NewSystem(20000, rfidest.WithSeed(6))
	noisy := rfidest.NewSystem(25000, rfidest.WithSeed(7), rfidest.WithNoise(0.001, 0.001))
	var jobs []Job
	for _, est := range []string{"BFCE", "SRC"} {
		jobs = append(jobs,
			Job{System: shared, Estimator: est, Epsilon: 0.1, Delta: 0.1, Trials: 3},
			Job{System: shared, Estimator: est, Epsilon: 0.2, Delta: 0.1, Trials: 2},
			Job{System: tagLevel, Estimator: est, Epsilon: 0.1, Delta: 0.1, Trials: 2},
			Job{System: noisy, Estimator: est, Epsilon: 0.1, Delta: 0.1, Trials: 2},
		)
	}
	return jobs
}

// stripWall zeroes the wall-clock fields, which are the only parts of a
// Report allowed to differ across worker counts.
func stripWall(rep *Report) *Report {
	c := *rep
	c.WallSeconds = 0
	c.Throughput = 0
	return &c
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := mixedBatch(t)
	cfg := Config{Seed: 0xf1ee7, Workers: 1}
	seq, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		par, err := Run(context.Background(), cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripWall(seq), stripWall(par)) {
			t.Fatalf("workers=%d: report differs from sequential run", workers)
		}
	}
}

func TestRunAccuracyAndAccounting(t *testing.T) {
	jobs := mixedBatch(t)
	rep, err := Run(context.Background(), Config{Seed: 42}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	wantTrials := 0
	for _, j := range jobs {
		wantTrials += j.Trials
	}
	if rep.Trials != wantTrials {
		t.Fatalf("trials %d, want %d", rep.Trials, wantTrials)
	}
	if rep.Failed != 0 || rep.Skipped != 0 {
		t.Fatalf("failed=%d skipped=%d", rep.Failed, rep.Skipped)
	}
	// ε ≤ 0.2, δ = 0.1 jobs: the batch mean must be far inside 50%.
	if rep.MeanAbsErr <= 0 || rep.MeanAbsErr > 0.2 {
		t.Fatalf("mean |err| = %v", rep.MeanAbsErr)
	}
	if rep.MaxAbsErr < rep.P90AbsErr || rep.P90AbsErr < rep.P50AbsErr {
		t.Fatalf("quantiles out of order: p50=%v p90=%v max=%v", rep.P50AbsErr, rep.P90AbsErr, rep.MaxAbsErr)
	}
	if rep.AirSeconds <= 0 {
		t.Fatal("no simulated air time accounted")
	}
	if rep.WallSeconds <= 0 || rep.Throughput <= 0 {
		t.Fatalf("wall=%v throughput=%v", rep.WallSeconds, rep.Throughput)
	}
	for _, r := range rep.Jobs {
		if len(r.Estimates) != r.Job.Trials {
			t.Fatalf("job %d: %d estimates, want %d", r.Index, len(r.Estimates), r.Job.Trials)
		}
		if r.Label() == "" {
			t.Fatalf("job %d: empty label", r.Index)
		}
	}
	groups := rep.PerEstimator()
	if len(groups) != 2 || groups[0].Estimator != "BFCE" || groups[1].Estimator != "SRC" {
		t.Fatalf("unexpected estimator groups: %+v", groups)
	}
	for _, g := range groups {
		if g.Trials != wantTrials/2 || g.Jobs != len(jobs)/2 {
			t.Fatalf("group %s: %+v", g.Estimator, g)
		}
	}
}

func TestRunCollectsPerJobErrors(t *testing.T) {
	sys := rfidest.NewSystem(10000, rfidest.WithSeed(9), rfidest.WithSynthetic())
	jobs := []Job{
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		{System: sys, Estimator: "no-such-estimator", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1}, // Trials 0 → 1
	}
	rep, err := Run(context.Background(), Config{Seed: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed=%d, want 1", rep.Failed)
	}
	bad := rep.Jobs[1]
	if bad.Err == nil || bad.FailedAt != 0 || len(bad.Estimates) != 0 {
		t.Fatalf("bad job result: %+v", bad)
	}
	if rep.Jobs[0].Err != nil || rep.Jobs[2].Err != nil {
		t.Fatal("sibling jobs must not inherit the failure")
	}
	if got := len(rep.Jobs[2].Estimates); got != 1 {
		t.Fatalf("Trials=0 ran %d trials, want 1", got)
	}
	if rep.Trials != 3 {
		t.Fatalf("completed trials %d, want 3", rep.Trials)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, err := Run(context.Background(), Config{}, []Job{{Estimator: "BFCE"}}); err == nil {
		t.Fatal("nil System must error")
	}
	sys := rfidest.NewSystem(100, rfidest.WithSynthetic())
	if _, err := Run(context.Background(), Config{}, []Job{{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: -1}}); err == nil {
		t.Fatal("negative trials must error")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := rfidest.NewSystem(10000, rfidest.WithSeed(3), rfidest.WithSynthetic())
	jobs := []Job{
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2},
	}
	rep, err := Run(ctx, Config{Workers: 1, Seed: 1}, jobs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled Run must still return the partial report")
	}
	if rep.Trials != 0 {
		t.Fatalf("upfront cancellation completed %d trials", rep.Trials)
	}
	if rep.Skipped != len(jobs) {
		t.Fatalf("skipped=%d, want %d", rep.Skipped, len(jobs))
	}
}

// TestRunMatchesDirectSaltedCalls pins the runner's seeding scheme: trial
// t of job i must be exactly System.EstimateWithSalt with
// Combine(seed, i, t) — so fleet results are reproducible outside the
// fleet, one call at a time.
func TestRunMatchesDirectSaltedCalls(t *testing.T) {
	sys := rfidest.NewSystem(20000, rfidest.WithSeed(77), rfidest.WithSynthetic())
	jobs := []Job{{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 4}}
	const seed = 0xabcde
	rep, err := Run(context.Background(), Config{Seed: seed}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for trial, got := range rep.Jobs[0].Estimates {
		want, err := sys.EstimateWithSalt("BFCE", 0.1, 0.1, saltFor(seed, 0, trial))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: fleet %+v != direct %+v", trial, got, want)
		}
	}
}
