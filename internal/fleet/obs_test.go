package fleet

import (
	"context"
	"reflect"
	"testing"

	"rfidest"
	"rfidest/internal/obs"
)

// TestSharedRegistryUnderConcurrency drives 32 goroutines through one
// Registry via the fleet pool: every trial of every job reports into the
// same sink concurrently. Run under -race in CI, this is the registry's
// thread-safety proof; the accounting assertions pin that no hook is lost
// under contention.
func TestSharedRegistryUnderConcurrency(t *testing.T) {
	sys := rfidest.NewSystem(30000, rfidest.WithSeed(5), rfidest.WithSynthetic())
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2}
	}
	reg := obs.NewRegistry()
	rep, err := Run(context.Background(), Config{Workers: 32, Seed: 42, Observer: reg}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 64 {
		t.Fatalf("trials = %d, want 64", rep.Trials)
	}
	s := reg.Snapshot()
	if s.Sessions != 64 || s.Errors != 0 {
		t.Fatalf("registry sessions/errors = %d/%d, want 64/0", s.Sessions, s.Errors)
	}
	// BFCE's per-session budget: one probe, one rough and one accurate span.
	for _, p := range []obs.Phase{obs.PhaseProbe, obs.PhaseRough, obs.PhaseAccurate} {
		if got := s.Phases[p].Spans; got != 64 {
			t.Errorf("%s spans = %d, want 64", p, got)
		}
	}
	if s.Phases[obs.PhaseAccurate].Slots != 64*8192 {
		t.Errorf("accurate slots = %d, want %d", s.Phases[obs.PhaseAccurate].Slots, 64*8192)
	}
	if s.AirTimeSeconds.Count != 64 || s.ProbeRounds.Count != 64 || s.EstimateRelErr.Count != 64 {
		t.Errorf("histogram counts air/probe/err = %d/%d/%d, want 64 each",
			s.AirTimeSeconds.Count, s.ProbeRounds.Count, s.EstimateRelErr.Count)
	}
	if len(s.Estimators) != 1 || s.Estimators[0].Sessions != 64 {
		t.Errorf("estimator accounting: %+v", s.Estimators)
	}
}

// TestObserverDoesNotPerturbResults pins the passivity contract at fleet
// scale: a batch with a shared registry (and per-job observers) produces a
// byte-for-byte identical Report to the uninstrumented batch.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	plain := mixedBatch(t)
	instrumented := mixedBatch(t)
	// mixedBatch builds fresh Systems each call with fixed seeds; same
	// salted sessions either way.
	jobReg := obs.NewRegistry()
	for i := range instrumented {
		instrumented[i].Observer = jobReg
	}
	cfg := Config{Seed: 0xf1ee7, Workers: 4}
	want, err := Run(context.Background(), cfg, plain)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = obs.NewRegistry()
	got, err := Run(context.Background(), cfg, instrumented)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Jobs {
		if !reflect.DeepEqual(want.Jobs[i].Estimates, got.Jobs[i].Estimates) {
			t.Fatalf("job %d: estimates differ with observers attached", i)
		}
	}
	if jobReg.Snapshot().Sessions == 0 {
		t.Error("per-job observer saw no sessions")
	}
}
