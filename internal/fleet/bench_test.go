package fleet

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"rfidest"
)

// BenchmarkMap measures the pool's raw dispatch overhead on trivial work.
func BenchmarkMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), 0, 256, func(i int) int { return i }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRun measures job-level batch throughput: 4 shared synthetic
// Systems x BFCE x 2 trials, sequential vs full-width pool.
func BenchmarkRun(b *testing.B) {
	sys := rfidest.NewSystem(200000, rfidest.WithSeed(1), rfidest.WithSynthetic())
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{System: sys, Estimator: "BFCE", Epsilon: 0.05, Delta: 0.05, Trials: 2})
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), Config{Workers: workers, Seed: 7}, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Trials != 8 {
					b.Fatalf("trials %d", rep.Trials)
				}
			}
		})
	}
}
