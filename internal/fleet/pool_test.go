package fleet

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	got, err := Map(context.Background(), 0, 100, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(i int) int { return i })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapWorkerCounts(t *testing.T) {
	want := make([]int, 37)
	for i := range want {
		want[i] = 3*i + 1
	}
	for _, workers := range []int{-1, 1, 2, 3, runtime.GOMAXPROCS(0), 64} {
		got, err := Map(context.Background(), workers, len(want), func(i int) int { return 3*i + 1 })
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d index %d: got %d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 10000
	got, err := Map(ctx, 2, n, func(i int) int {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i + 1
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) != n {
		t.Fatalf("result length %d, want %d", len(got), n)
	}
	if ran.Load() >= n {
		t.Fatal("cancellation did not stop the pool early")
	}
	// Completed slots hold fn's value, unstarted ones the zero value.
	zero, nonzero := 0, 0
	for i, v := range got {
		switch v {
		case 0:
			zero++
		case i + 1:
			nonzero++
		default:
			t.Fatalf("index %d: impossible value %d", i, v)
		}
	}
	if zero == 0 || nonzero == 0 {
		t.Fatalf("expected a mix of done/undone slots, got %d done, %d undone", nonzero, zero)
	}
}

func TestMapSequentialCancelledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Map(ctx, 1, 5, func(i int) int { return i + 1 })
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("index %d ran after upfront cancellation: %d", i, v)
		}
	}
}
