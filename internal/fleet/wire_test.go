package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"rfidest"
)

// TestJobResultWireFormat pins the JobResult JSON schema: lowerCamel keys,
// process-local fields (System, Observer, Options, Err) excluded, Failure
// carrying the error text.
func TestJobResultWireFormat(t *testing.T) {
	res := JobResult{
		Job:      Job{Name: "j0", System: rfidest.NewSystem(10, rfidest.WithSynthetic()), Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		Index:    3,
		Err:      errors.New("boom"),
		Failure:  "boom",
		FailedAt: 1,
		Estimates: []rfidest.Estimate{
			{N: 12.5, Seconds: 0.25, Slots: 7, ReaderBits: 8, Rounds: 1, Guarded: true, TagTransmissions: -1},
		},
		MeanAbsErr:    0.5,
		MaxAbsErr:     0.5,
		AirSeconds:    0.25,
		Transmissions: -1,
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"job":{"name":"j0","estimator":"BFCE","epsilon":0.1,"delta":0.1,"trials":2},` +
		`"index":3,"estimates":[{"n":12.5,"seconds":0.25,"slots":7,"readerBits":8,` +
		`"rounds":1,"guarded":true,"tagTransmissions":-1}],"failure":"boom","failedAt":1,` +
		`"meanAbsErr":0.5,"maxAbsErr":0.5,"airSeconds":0.25,"transmissions":-1}`
	if string(got) != want {
		t.Errorf("JobResult wire format drifted:\n got  %s\n want %s", got, want)
	}
	for _, forbidden := range []string{"System", "Observer", "Options", `"Err"`} {
		if strings.Contains(string(got), forbidden) {
			t.Errorf("process-local field %s leaked onto the wire: %s", forbidden, got)
		}
	}

	var back JobResult
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	// Err and System are deliberately not on the wire; compare the rest.
	res.Err, res.Job.System = nil, nil
	if !reflect.DeepEqual(back, res) {
		t.Errorf("JobResult did not round-trip:\n got  %+v\n want %+v", back, res)
	}
}

// TestReportJSONRoundTrip marshals a live batch Report and requires the
// wire-visible fields to survive the round trip bit-exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	rep, err := Run(context.Background(), Config{Seed: 7, Workers: 2}, []Job{
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		{System: sys, Estimator: "ZOE-batched", Epsilon: 0.1, Delta: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	// Strip the process-local fields the wire never carries.
	want := *rep
	want.Jobs = append([]JobResult(nil), rep.Jobs...)
	for i := range want.Jobs {
		want.Jobs[i].Job.System = nil
		want.Jobs[i].Job.Observer = nil
		want.Jobs[i].Job.Options = nil
		want.Jobs[i].Err = nil
	}
	if !reflect.DeepEqual(back, want) {
		t.Errorf("Report did not round-trip:\n got  %+v\n want %+v", back, want)
	}
}

// TestOnJobDoneHook: the batch submission hook fires exactly once per job,
// with final results, in both pooled and interleaved modes.
func TestOnJobDoneHook(t *testing.T) {
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	jobs := []Job{
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		{System: sys, Estimator: "ZOE-batched", Epsilon: 0.1, Delta: 0.1},
	}
	for _, interleave := range []bool{false, true} {
		seen := make([]JobResult, len(jobs))
		count := 0
		cfg := Config{Seed: 7, Workers: 1, Interleave: interleave, OnJobDone: func(r JobResult) {
			seen[r.Index] = r
			count++
		}}
		rep, err := Run(context.Background(), cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if count != len(jobs) {
			t.Fatalf("interleave=%v: OnJobDone fired %d times, want %d", interleave, count, len(jobs))
		}
		if !reflect.DeepEqual(seen, rep.Jobs) {
			t.Errorf("interleave=%v: hook results differ from Report.Jobs", interleave)
		}
	}
}

// TestJobOptionsSaltOverride: a WithSeedSalt in Job.Options overrides the
// fleet-derived trial salt, so the job's single trial is bit-identical to a
// direct salted Run — the contract the serving layer's micro-batcher
// coalesces requests on.
func TestJobOptionsSaltOverride(t *testing.T) {
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	const salt = 0xfeedbeef
	want, err := sys.Run(context.Background(),
		rfidest.WithAccuracy(0.1, 0.1), rfidest.WithSeedSalt(salt))
	if err != nil {
		t.Fatal(err)
	}
	for _, interleave := range []bool{false, true} {
		rep, err := Run(context.Background(), Config{Seed: 99, Interleave: interleave}, []Job{{
			System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1,
			Options: []rfidest.Option{rfidest.WithSeedSalt(salt)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Jobs[0].Estimates) != 1 || rep.Jobs[0].Estimates[0] != want {
			t.Errorf("interleave=%v: salted job option did not replay the direct run:\n got  %+v\n want %+v",
				interleave, rep.Jobs[0].Estimates, want)
		}
	}
}

// TestJobOptionsTimeout: rfidest.WithTimeout via Job.Options bounds a trial
// in interleaved mode (where Config.TrialTimeout is unavailable); an
// immediate deadline fails the trial without failing its siblings.
func TestJobOptionsTimeout(t *testing.T) {
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	rep, err := Run(context.Background(), Config{Seed: 7, Interleave: true}, []Job{
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1,
			Options: []rfidest.Option{rfidest.WithTimeout(1)}}, // 1ns: expires before round 1
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Err == nil {
		t.Error("1ns per-trial timeout did not fail the job")
	}
	if rep.Jobs[0].Failure == "" {
		t.Error("failed job has no wire Failure text")
	}
	if rep.Jobs[1].Err != nil || len(rep.Jobs[1].Estimates) != 1 {
		t.Errorf("sibling job was perturbed by job 0's timeout: %+v", rep.Jobs[1])
	}
}
