// Package fleet runs batches of estimation work across a bounded worker
// pool with deterministic seeding: results are bit-identical whether the
// batch runs on one worker or GOMAXPROCS, because every unit of work
// derives all of its randomness from its index, never from scheduling.
//
// Two layers are provided. Map is the generic substrate — an index-ordered
// parallel map with bounded workers and context cancellation, the
// job-level generalization of the trial pool the experiment harness has
// always used. Run is the estimation-specific runner on top: it takes a
// slice of Jobs ({System, estimator, ε, δ, trials}), fans them out, keys
// every trial's session on (batch seed, job index, trial index) via
// System.EstimateWithSalt, collects per-job errors, and aggregates
// accuracy, throughput and simulated air time into a Report.
//
// Determinism allowlist policy: this package is covered by the detrand
// analyzer (cmd/ and examples/ are the only blanket exemptions), and it
// deliberately reads the wall clock in exactly one place — timing Run to
// report WallSeconds and Throughput. That measurement is outside the
// determinism contract: it describes the host machine, never feeds an
// estimate, and is documented as the only scheduling-dependent output of
// a Report. Each wall-clock read carries a //lint:allow detrand
// suppression at the use site so the exemption stays visible in source
// review rather than hiding in linter configuration; any new wall-clock
// read here must justify itself the same way.
package fleet

import (
	"context"
	"runtime"
	"sync"
)

// Map evaluates fn(0..n-1) across a bounded worker pool and returns the
// results in index order. workers <= 0 means GOMAXPROCS. The output is
// bit-identical to a sequential loop whenever fn(i) depends only on i —
// parallelism changes wall-clock time, never results.
//
// Cancellation: when ctx is done, workers stop picking up new indices and
// Map returns ctx.Err() alongside the partial results; slots whose fn
// never ran hold T's zero value. In-flight fn calls are not interrupted
// (fn may watch ctx itself if its work is long).
func Map[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = fn(i)
		}
		return out, nil
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				out[i] = fn(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(indices)
	wg.Wait()
	return out, err
}
