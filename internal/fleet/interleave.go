package fleet

import (
	"context"

	"rfidest"
	"rfidest/internal/obs"
	"rfidest/internal/sched"
	"rfidest/internal/stats"
	"rfidest/internal/xrand"
)

// runInterleaved executes the whole batch on the deterministic round
// scheduler: every job becomes one sched.Runner whose Step advances its
// current trial by one protocol round, and the scheduler rotates through
// the jobs breadth-first. The per-job trial/retry/fold logic is a
// round-resumable transcription of runJob/runTrial — same salts, same
// accounting, same break-at-first-failure semantics — so the resulting
// JobResults are bit-identical to the pooled mode's.
func runInterleaved(ctx context.Context, cfg Config, jobs []Job) ([]JobResult, int) {
	runners := make([]*jobRunner, len(jobs))
	steppers := make([]sched.Runner, len(jobs))
	for i, job := range jobs {
		runners[i] = newJobRunner(cfg, i, job)
		steppers[i] = runners[i]
	}
	outcome := sched.Interleave(ctx, sched.Config{Seed: cfg.Seed}, steppers)
	results := make([]JobResult, len(jobs))
	rounds := 0
	for i, r := range runners {
		rounds += outcome[i].Rounds
		results[i] = r.finalize(ctx)
		if cfg.OnJobDone != nil {
			cfg.OnJobDone(results[i])
		}
	}
	return results, rounds
}

// jobRunner is one job as a resumable state machine over (trial, attempt,
// round): the scheduler calls Step, each call executes one protocol round
// of the job's current trial attempt, and trial completion folds into the
// JobResult exactly as the pooled runJob loop does.
type jobRunner struct {
	cfg      Config
	index    int
	job      Job
	trials   int
	truth    float64
	observer obs.Observer

	res     JobResult
	metered bool

	t       int // current trial
	attempt int // current retry attempt within the trial
	backoff float64
	rs      *rfidest.RunSession

	started bool // at least one Step ran
	done    bool // the job folded (all trials, first failure, or cancellation)
}

func newJobRunner(cfg Config, index int, job Job) *jobRunner {
	trials := job.Trials
	if trials == 0 {
		trials = 1
	}
	return &jobRunner{
		cfg:      cfg,
		index:    index,
		job:      job,
		trials:   trials,
		truth:    float64(job.System.N()),
		observer: obs.Multi(cfg.Observer, job.Observer),
		res:      JobResult{Job: job, Index: index, FailedAt: -1},
		backoff:  job.RetryBackoffSeconds,
	}
}

// Step implements sched.Runner: it opens the current trial attempt's
// session if none is in flight, then executes exactly one protocol round.
func (j *jobRunner) Step(ctx context.Context) (bool, error) {
	if j.done {
		return true, nil
	}
	j.started = true
	if j.rs == nil {
		if ctx != nil && ctx.Err() != nil {
			return j.finish(), nil // keep what completed; Run reports the cancellation
		}
		salt := saltFor(j.cfg.Seed, j.index, j.t)
		if j.attempt > 0 {
			salt = xrand.Combine(j.cfg.Seed, uint64(j.index), uint64(j.t), uint64(j.attempt))
		}
		opts := append([]rfidest.Option{
			rfidest.WithEstimator(j.job.Estimator),
			rfidest.WithAccuracy(j.job.Epsilon, j.job.Delta),
			rfidest.WithSeedSalt(salt),
			rfidest.WithObserver(j.observer)}, j.job.Options...)
		rs, err := j.job.System.StartRun(opts...)
		if err != nil {
			return j.trialDone(ctx, rfidest.Estimate{}, err), nil
		}
		j.rs = rs
	}
	done, _ := j.rs.Step(ctx)
	if !done {
		return false, nil
	}
	est, err := j.rs.Result()
	j.rs = nil
	return j.trialDone(ctx, est, err), nil
}

// trialDone resolves one completed attempt, replaying runTrial's retry
// decision and runJob's fold, and reports whether the whole job is done.
func (j *jobRunner) trialDone(ctx context.Context, est rfidest.Estimate, err error) bool {
	settled := err == nil && !est.Saturated
	if !settled && j.attempt < j.job.Retries && (ctx == nil || ctx.Err() == nil) {
		// Re-run the trial over a fresh attempt-extended salt, charging the
		// exponential backoff as simulated air time.
		j.res.Retries++
		j.res.BackoffSeconds += j.backoff
		j.res.AirSeconds += j.backoff
		j.backoff *= 2
		j.attempt++
		j.observer.Retry(j.job.Estimator, j.attempt)
		return false
	}
	j.attempt = 0
	j.backoff = j.job.RetryBackoffSeconds
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return j.finish() // a cancelled batch never turns into per-job errors
		}
		if j.job.Retries > 0 {
			// Retries exhausted: the job degrades to the trials that did
			// complete instead of failing the batch.
			j.res.Degraded = true
			j.observer.Degraded(j.job.Estimator)
			return j.finish()
		}
		j.res.Err = err
		j.res.Failure = err.Error()
		j.res.FailedAt = j.t
		return j.finish()
	}
	if est.Saturated {
		// The accepted estimate is still a clamp artifact after every
		// allowed re-run — keep it but flag the degradation.
		j.res.Degraded = true
		j.res.DegradedTrials++
		j.observer.Degraded(j.job.Estimator)
	}
	j.res.Estimates = append(j.res.Estimates, est)
	j.res.AirSeconds += est.Seconds
	if est.TagTransmissions >= 0 {
		j.metered = true
		j.res.Transmissions += est.TagTransmissions
	}
	if j.truth > 0 {
		e := stats.RelError(est.N, j.truth)
		j.res.MeanAbsErr += e
		if e > j.res.MaxAbsErr {
			j.res.MaxAbsErr = e
		}
	}
	j.t++
	if j.t >= j.trials {
		return j.finish()
	}
	return false
}

// finish seals the JobResult with the same post-loop accounting runJob
// applies, and always reports done.
func (j *jobRunner) finish() bool {
	if len(j.res.Estimates) > 0 {
		j.res.MeanAbsErr /= float64(len(j.res.Estimates))
	}
	if !j.metered {
		j.res.Transmissions = -1
	}
	j.done = true
	return true
}

// finalize extracts the JobResult after the scheduler returns. A job the
// scheduler never reached (cancellation before its first round) is marked
// Skipped like a never-started pooled job; a job cut mid-trial drains its
// open session (one Step under the cancelled context fails the run and
// closes its observer span) and keeps the trials that completed.
func (j *jobRunner) finalize(ctx context.Context) JobResult {
	if !j.started {
		return JobResult{Job: j.job, Index: j.index, FailedAt: -1, Skipped: true, Transmissions: -1}
	}
	if !j.done {
		if j.rs != nil {
			j.rs.Step(ctx)
			j.rs = nil
		}
		j.finish()
	}
	return j.res
}
