package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rfidest"
	"rfidest/internal/obs"
	"rfidest/internal/stats"
	"rfidest/internal/xrand"
)

// Job is one unit of fleet work: repeated (ε, δ) estimations of a single
// System with a named estimator.
type Job struct {
	// Name labels the job in reports; empty names render as "sysI/estimator".
	Name string `json:"name,omitempty"`
	// System is the deployment to estimate. Systems may be shared between
	// jobs: concurrent estimation over one System is safe, and fleet trials
	// address their sessions by salt, so sharing does not perturb results.
	System *rfidest.System `json:"-"`
	// Estimator is a name accepted by System.EstimateWith (see
	// rfidest.Estimators).
	Estimator string `json:"estimator"`
	// Epsilon, Delta form the accuracy requirement, both in (0, 1).
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// Trials is how many independent estimations to run (0 means 1).
	Trials int `json:"trials,omitempty"`
	// Retries is how many times a failed or saturated trial may be re-run
	// before the job degrades (0 = no retry, the historical behaviour:
	// the first error fails the job). Retry attempt k of trial t runs over
	// the session addressed by Combine(seed, job, t, k), so retried
	// batches replay bit-identically too.
	//
	// Deprecated: prefer Options with rfidest.WithRetry, which re-runs
	// saturated rounds inside one session instead of re-salting whole
	// trials. The field is kept for batches that want the historical
	// fresh-salt retry ladder.
	Retries int `json:"retries,omitempty"`
	// RetryBackoffSeconds is the simulated air time charged before retry
	// attempt k (scaled by 2^(k-1) — exponential backoff). It models the
	// quiet period a real reader waits out after a failed round and is
	// accounted in AirSeconds/BackoffSeconds; no wall-clock sleep happens.
	//
	// Deprecated: meaningful only with the deprecated Retries ladder.
	RetryBackoffSeconds float64 `json:"retryBackoffSeconds,omitempty"`
	// Observer, when non-nil, receives the job's session and phase spans.
	// It is teed with the batch-wide Config.Observer; observation is
	// passive, so attaching one never perturbs results.
	Observer obs.Observer `json:"-"`
	// Options are extra rfidest run options appended after the ones the
	// runner derives from the fields above (estimator, accuracy, trial
	// salt, observer) — the unified option path the serving layer marshals
	// requests onto. Because options apply in order, an option here
	// overrides its field-derived counterpart: rfidest.WithSeedSalt pins
	// every trial and retry attempt of the job to that one session
	// (Trials > 1 then re-runs one bit-identical session — what a
	// coalesced single-estimate request wants), rfidest.WithTimeout bounds
	// each trial attempt like Config.TrialTimeout, and
	// rfidest.WithEstimator / rfidest.WithAccuracy shadow the Estimator /
	// Epsilon / Delta fields. Options must be pure (stateless closures):
	// they are re-applied on every trial and attempt.
	Options []rfidest.Option `json:"-"`
}

// JobResult is the outcome of one Job.
type JobResult struct {
	Job   Job `json:"job"`
	Index int `json:"index"` // position in the submitted batch

	// Estimates holds one entry per completed trial, in trial order.
	Estimates []rfidest.Estimate `json:"estimates,omitempty"`
	// Err is the first trial error; trials after a failure are not run.
	// FailedAt is that trial's index (-1 when Err is nil). With Retries
	// configured, a trial that exhausts its retries degrades the job (see
	// Degraded) instead of setting Err — only batch cancellation and
	// retry-exempt failures land here. Err itself does not marshal;
	// Failure carries its message on the wire.
	Err      error  `json:"-"`
	Failure  string `json:"failure,omitempty"`
	FailedAt int    `json:"failedAt"`
	// Skipped is set when cancellation struck before the job started.
	Skipped bool `json:"skipped,omitempty"`

	// Degraded reports the job returned a partial or reduced-quality
	// result: a trial exhausted its retries (and was dropped), or a
	// trial's accepted estimate was still saturated after retrying.
	// DegradedTrials counts the latter.
	Degraded       bool `json:"degraded,omitempty"`
	DegradedTrials int  `json:"degradedTrials,omitempty"`
	// Retries is the total number of re-run attempts across the job's
	// trials; BackoffSeconds the simulated backoff time they cost (also
	// included in AirSeconds).
	Retries        int     `json:"retries,omitempty"`
	BackoffSeconds float64 `json:"backoffSeconds,omitempty"`

	// MeanAbsErr and MaxAbsErr summarize |n̂−n|/n over the completed
	// trials against the System's ground truth (NaN-free: 0 when no trial
	// completed).
	MeanAbsErr float64 `json:"meanAbsErr"`
	MaxAbsErr  float64 `json:"maxAbsErr"`
	// AirSeconds is the total simulated air time the job consumed.
	AirSeconds float64 `json:"airSeconds"`
	// Transmissions is the total tag transmissions across trials, or -1
	// when the System's engine does not meter energy.
	Transmissions int `json:"transmissions"`
}

// Label returns the job's display name.
func (r JobResult) Label() string {
	if r.Job.Name != "" {
		return r.Job.Name
	}
	return fmt.Sprintf("sys%d/%s", r.Index, r.Job.Estimator)
}

// Report aggregates a batch. Everything except WallSeconds and Throughput
// is a pure function of (seed, jobs) — bit-identical across worker counts.
type Report struct {
	Jobs []JobResult `json:"jobs"`

	Trials   int `json:"trials"`             // completed trials across all jobs
	Failed   int `json:"failed,omitempty"`   // jobs that stopped on an error
	Skipped  int `json:"skipped,omitempty"`  // jobs cancelled before starting
	Degraded int `json:"degraded,omitempty"` // jobs that returned a degraded result
	Retries  int `json:"retries,omitempty"`  // trial re-runs across all jobs

	// Accuracy of all completed trials: mean and quantiles of |n̂−n|/n.
	MeanAbsErr float64 `json:"meanAbsErr"`
	P50AbsErr  float64 `json:"p50AbsErr"`
	P90AbsErr  float64 `json:"p90AbsErr"`
	P99AbsErr  float64 `json:"p99AbsErr"`
	MaxAbsErr  float64 `json:"maxAbsErr"`

	// AirSeconds is the total simulated air time; WallSeconds the real
	// time Run took; Throughput the completed trials per wall second.
	AirSeconds  float64 `json:"airSeconds"`
	WallSeconds float64 `json:"wallSeconds"`
	Throughput  float64 `json:"throughput"`

	// SchedRounds is the number of protocol rounds the interleaving
	// scheduler executed across the batch (0 in pooled mode).
	SchedRounds int `json:"schedRounds,omitempty"`
}

// Config tunes a Run.
type Config struct {
	// Workers bounds the pool (<= 0 means GOMAXPROCS). The worker count
	// affects wall-clock time only, never results.
	Workers int
	// Seed roots the per-trial session salts: trial t of job i runs over
	// the session addressed by Combine(Seed, i, t).
	Seed uint64
	// Observer, when non-nil, receives every trial's session and phase
	// spans across the whole batch — typically an *obs.Registry shared by
	// all workers. Results are bit-identical with or without it.
	Observer obs.Observer
	// TrialTimeout, when positive, bounds each trial attempt with a real
	// context deadline derived from Run's context. The deadline is checked
	// at session start and again before every protocol round — the round
	// in flight always completes, so a timed-out attempt stops at a round
	// boundary with deterministic per-round results. A timed-out attempt
	// counts as a failed attempt and is retried like any other when
	// Job.Retries allows. Incompatible with Interleave, whose scheduler
	// already cuts the whole batch at round granularity via Run's context.
	//
	// Deprecated: prefer per-job rfidest.WithTimeout via Job.Options,
	// which works in both pooled and interleaved modes.
	TrialTimeout time.Duration
	// OnJobDone, when non-nil, is invoked once per job as soon as its
	// JobResult is final — the batch submission hook the serving layer's
	// micro-batcher uses to answer each coalesced request without waiting
	// for the whole Report. In pooled mode it runs on the worker goroutine
	// that finished the job (so it may be called concurrently and must be
	// fast and thread-safe); in interleaved mode it runs on the scheduler
	// goroutine, in job-index order, after the schedule completes. Skipped
	// jobs (cancellation before start) are reported too. The callback sees
	// the result before batch summarization; it must not mutate it.
	OnJobDone func(JobResult)
	// Interleave selects the scheduler-backed batch mode: instead of a
	// worker pool running each trial to completion, a single deterministic
	// round scheduler (internal/sched) advances every job one protocol
	// round per scheduling epoch — the breadth-first schedule a fleet of
	// readers sharing one medium would follow. Trials within a job stay
	// sequential (trial t+1's warm accounting depends on trial t's fold),
	// so the Report is bit-identical to the pooled mode's: same salts,
	// same folds, same estimates. Report.SchedRounds counts the rounds the
	// scheduler executed.
	Interleave bool
}

// Run executes the batch over a bounded worker pool. Job errors are
// collected per job (a failing job does not stop its siblings); the
// returned error is non-nil only for an invalid batch or cancellation.
// On cancellation the partial Report is still returned, with unstarted
// jobs marked Skipped.
func Run(ctx context.Context, cfg Config, jobs []Job) (*Report, error) {
	if len(jobs) == 0 {
		return nil, errors.New("fleet: empty batch")
	}
	if cfg.TrialTimeout < 0 {
		return nil, fmt.Errorf("fleet: negative trial timeout %v", cfg.TrialTimeout)
	}
	if cfg.Interleave && cfg.TrialTimeout > 0 {
		return nil, errors.New("fleet: Interleave and TrialTimeout are mutually exclusive; cancel the batch context to bound an interleaved run")
	}
	for i, j := range jobs {
		if j.System == nil {
			return nil, fmt.Errorf("fleet: job %d has a nil System", i)
		}
		if j.Trials < 0 {
			return nil, fmt.Errorf("fleet: job %d has negative trials", i)
		}
		if j.Retries < 0 {
			return nil, fmt.Errorf("fleet: job %d has negative retries", i)
		}
		// Positively phrased so a NaN backoff is rejected too.
		if !(j.RetryBackoffSeconds >= 0) {
			return nil, fmt.Errorf("fleet: job %d has invalid retry backoff %v", i, j.RetryBackoffSeconds)
		}
	}

	start := time.Now() //lint:allow detrand wall-clock throughput reporting; feeds only WallSeconds/Throughput, never results
	var (
		results     []JobResult
		err         error
		schedRounds int
	)
	if cfg.Interleave {
		results, schedRounds = runInterleaved(ctx, cfg, jobs)
		err = ctx.Err()
	} else {
		results, err = Map(ctx, cfg.Workers, len(jobs), func(i int) JobResult {
			r := runJob(ctx, cfg, i, jobs[i])
			if cfg.OnJobDone != nil {
				cfg.OnJobDone(r)
			}
			return r
		})
	}
	wall := time.Since(start).Seconds() //lint:allow detrand wall-clock throughput reporting; feeds only WallSeconds/Throughput, never results

	// Unstarted slots (cancellation) come back zero-valued; mark them.
	for i := range results {
		if results[i].Job.System == nil {
			results[i] = JobResult{Job: jobs[i], Index: i, FailedAt: -1, Skipped: true, Transmissions: -1}
			if cfg.OnJobDone != nil {
				cfg.OnJobDone(results[i])
			}
		}
	}
	rep := summarize(results)
	rep.WallSeconds = wall
	rep.SchedRounds = schedRounds
	if wall > 0 {
		rep.Throughput = float64(rep.Trials) / wall
	}
	return rep, err
}

// saltFor derives the session salt of trial `trial` of job `job` — the
// runner's whole seeding scheme, exposed so tests can replay any fleet
// trial as a single direct EstimateWithSalt call.
func saltFor(seed uint64, job, trial int) uint64 {
	return xrand.Combine(seed, uint64(job), uint64(trial))
}

// runJob runs one job's trials sequentially, deriving each trial's
// session salt from (seed, job index, trial index) alone.
func runJob(ctx context.Context, cfg Config, index int, job Job) JobResult {
	trials := job.Trials
	if trials == 0 {
		trials = 1
	}
	res := JobResult{Job: job, Index: index, FailedAt: -1}
	truth := float64(job.System.N())
	metered := false
	observer := obs.Multi(cfg.Observer, job.Observer)
	for t := 0; t < trials; t++ {
		if ctx.Err() != nil {
			break // keep what completed; Run reports the cancellation
		}
		est, err := runTrial(ctx, cfg, index, job, t, observer, &res)
		if err != nil {
			if ctx.Err() != nil {
				break // a cancelled batch never turns into per-job errors
			}
			if job.Retries > 0 {
				// Retries exhausted: the job degrades to the trials that
				// did complete instead of failing the batch.
				res.Degraded = true
				observer.Degraded(job.Estimator)
				break
			}
			res.Err = err
			res.Failure = err.Error()
			res.FailedAt = t
			break
		}
		if est.Saturated {
			// The accepted estimate is still a clamp artifact after every
			// allowed re-run — keep it (it is a genuine resolution bound)
			// but flag the degradation.
			res.Degraded = true
			res.DegradedTrials++
			observer.Degraded(job.Estimator)
		}
		res.Estimates = append(res.Estimates, est)
		res.AirSeconds += est.Seconds
		if est.TagTransmissions >= 0 {
			metered = true
			res.Transmissions += est.TagTransmissions
		}
		if truth > 0 {
			e := stats.RelError(est.N, truth)
			res.MeanAbsErr += e
			if e > res.MaxAbsErr {
				res.MaxAbsErr = e
			}
		}
	}
	if len(res.Estimates) > 0 {
		res.MeanAbsErr /= float64(len(res.Estimates))
	}
	if !metered {
		res.Transmissions = -1
	}
	return res
}

// runTrial runs one trial, re-running failed or saturated attempts within
// the job's retry budget. Attempt 0 uses the historical saltFor salt (so
// retry-free batches replay bit-identically against direct salted calls);
// attempt k > 0 extends the derivation with k. Each attempt runs under the
// batch context, tightened by Config.TrialTimeout when set — estimation
// gates on the deadline at session start, so an in-flight attempt still
// completes and determinism is preserved. Backoff before attempt k charges
// RetryBackoffSeconds·2^(k−1) of simulated air time; no wall-clock sleep.
func runTrial(ctx context.Context, cfg Config, index int, job Job, t int, observer obs.Observer, res *JobResult) (rfidest.Estimate, error) {
	backoff := job.RetryBackoffSeconds
	for attempt := 0; ; attempt++ {
		salt := saltFor(cfg.Seed, index, t)
		if attempt > 0 {
			salt = xrand.Combine(cfg.Seed, uint64(index), uint64(t), uint64(attempt))
		}
		tctx := ctx
		var cancel context.CancelFunc
		if cfg.TrialTimeout > 0 {
			tctx, cancel = context.WithTimeout(ctx, cfg.TrialTimeout)
		}
		opts := append([]rfidest.Option{
			rfidest.WithEstimator(job.Estimator),
			rfidest.WithAccuracy(job.Epsilon, job.Delta),
			rfidest.WithSeedSalt(salt),
			rfidest.WithObserver(observer)}, job.Options...)
		est, err := job.System.Run(tctx, opts...)
		if cancel != nil {
			cancel()
		}
		done := err == nil && !est.Saturated
		if done || attempt >= job.Retries || ctx.Err() != nil {
			return est, err
		}
		res.Retries++
		res.BackoffSeconds += backoff
		res.AirSeconds += backoff
		backoff *= 2
		observer.Retry(job.Estimator, attempt+1)
	}
}

// summarize folds job results into the batch-level Report.
func summarize(results []JobResult) *Report {
	rep := &Report{Jobs: results}
	var errs []float64
	for _, r := range results {
		switch {
		case r.Skipped:
			rep.Skipped++
		case r.Err != nil:
			rep.Failed++
		}
		if r.Degraded {
			rep.Degraded++
		}
		rep.Retries += r.Retries
		rep.AirSeconds += r.BackoffSeconds
		truth := float64(0)
		if r.Job.System != nil {
			truth = float64(r.Job.System.N())
		}
		for _, est := range r.Estimates {
			rep.Trials++
			rep.AirSeconds += est.Seconds
			if truth > 0 {
				errs = append(errs, stats.RelError(est.N, truth))
			}
		}
	}
	if len(errs) > 0 {
		sum := 0.0
		for _, e := range errs {
			sum += e
		}
		rep.MeanAbsErr = sum / float64(len(errs))
		sort.Float64s(errs)
		rep.P50AbsErr = stats.Quantile(errs, 0.50)
		rep.P90AbsErr = stats.Quantile(errs, 0.90)
		rep.P99AbsErr = stats.Quantile(errs, 0.99)
		rep.MaxAbsErr = errs[len(errs)-1]
	}
	return rep
}

// GroupStat is an aggregate over the jobs sharing one estimator.
type GroupStat struct {
	Estimator  string
	Jobs       int
	Trials     int
	Failed     int
	Degraded   int
	Retries    int
	MeanAbsErr float64
	P90AbsErr  float64
	AirSeconds float64
}

// PerEstimator groups the report's completed trials by estimator name,
// sorted by name — the breakdown the fleet CLI prints.
func (rep *Report) PerEstimator() []GroupStat {
	byName := map[string]*GroupStat{}
	errsByName := map[string][]float64{}
	for _, r := range rep.Jobs {
		if r.Skipped {
			continue
		}
		g := byName[r.Job.Estimator]
		if g == nil {
			g = &GroupStat{Estimator: r.Job.Estimator}
			byName[r.Job.Estimator] = g
		}
		g.Jobs++
		if r.Err != nil {
			g.Failed++
		}
		if r.Degraded {
			g.Degraded++
		}
		g.Retries += r.Retries
		g.Trials += len(r.Estimates)
		g.AirSeconds += r.AirSeconds
		truth := float64(r.Job.System.N())
		for _, est := range r.Estimates {
			if truth > 0 {
				errsByName[r.Job.Estimator] = append(errsByName[r.Job.Estimator], stats.RelError(est.N, truth))
			}
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]GroupStat, 0, len(names))
	for _, name := range names {
		g := byName[name]
		if errs := errsByName[name]; len(errs) > 0 {
			sum := 0.0
			for _, e := range errs {
				sum += e
			}
			g.MeanAbsErr = sum / float64(len(errs))
			sort.Float64s(errs)
			g.P90AbsErr = stats.Quantile(errs, 0.90)
		}
		out = append(out, *g)
	}
	return out
}
