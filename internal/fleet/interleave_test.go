package fleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rfidest"
)

// stripSched removes the wall-clock fields and the scheduler round count —
// everything else in a Report must be bit-identical between the pooled and
// interleaved execution modes.
func stripSched(rep *Report) *Report {
	c := *stripWall(rep)
	c.SchedRounds = 0
	return &c
}

// TestInterleavedMatchesPooled: interleaving is a schedule, not a
// semantics — per-trial salts pin every session, so breadth-first
// execution must reproduce the pooled Report exactly.
func TestInterleavedMatchesPooled(t *testing.T) {
	jobs := mixedBatch(t)
	// Exercise the retry path under the scheduler too.
	jobs = append(jobs, Job{
		System:    rfidest.NewSystem(15000, rfidest.WithSeed(9), rfidest.WithSynthetic()),
		Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2,
		Retries: 2, RetryBackoffSeconds: 0.25,
	})
	ctx := context.Background()
	pooled, err := Run(ctx, Config{Seed: 0xf1ee7, Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Run(ctx, Config{Seed: 0xf1ee7, Interleave: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSched(pooled), stripSched(inter)) {
		t.Fatalf("interleaved report differs from pooled:\npooled %+v\ninter  %+v",
			stripSched(pooled), stripSched(inter))
	}
	if pooled.SchedRounds != 0 {
		t.Errorf("pooled mode reported %d scheduler rounds", pooled.SchedRounds)
	}
	if inter.SchedRounds < inter.Trials {
		t.Errorf("scheduler rounds %d below trial count %d — every trial is at least one round",
			inter.SchedRounds, inter.Trials)
	}
}

// TestInterleaveSeedChangesScheduleNotResults: the scheduler seed permutes
// the visit order only; estimates depend on per-trial salts alone.
func TestInterleaveSeedChangesScheduleNotResults(t *testing.T) {
	jobs := mixedBatch(t)
	ctx := context.Background()
	a, err := Run(ctx, Config{Seed: 0xf1ee7, Interleave: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, Config{Seed: 0xf1ee7, Interleave: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Fatal("same seed, different interleaved reports")
	}
}

// TestInterleaveTrialTimeoutExclusive: per-trial deadlines assume a trial
// owns the clock between its start and end — meaningless when its rounds
// are interleaved with every other session's — so the pair is rejected.
func TestInterleaveTrialTimeoutExclusive(t *testing.T) {
	jobs := mixedBatch(t)
	_, err := Run(context.Background(), Config{Interleave: true, TrialTimeout: time.Second}, jobs)
	if err == nil {
		t.Fatal("Interleave+TrialTimeout accepted")
	}
}

// TestInterleaveCancelledBeforeStart: a pre-cancelled batch skips every
// job, like the pooled path.
func TestInterleaveCancelledBeforeStart(t *testing.T) {
	jobs := mixedBatch(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{Interleave: true}, jobs)
	if err == nil {
		t.Fatal("cancelled interleaved run returned nil error")
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if rep.Skipped != len(jobs) {
		t.Fatalf("skipped %d of %d jobs", rep.Skipped, len(jobs))
	}
	for _, r := range rep.Jobs {
		if !r.Skipped || r.Err != nil || len(r.Estimates) != 0 {
			t.Fatalf("job %d: %+v", r.Index, r)
		}
	}
}

// TestInterleaveCancelledMidRun: cancellation mid-schedule keeps completed
// trials, raises no per-job errors, and still returns a coherent report.
func TestInterleaveCancelledMidRun(t *testing.T) {
	jobs := mixedBatch(t)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from a watchdog once the scheduler is certainly mid-batch:
	// the run below takes hundreds of milliseconds of CPU.
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, Config{Interleave: true}, jobs)
	if err == nil {
		// The batch won the race; nothing to assert beyond coherence.
		t.Skip("batch finished before cancellation")
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	completed := 0
	for _, r := range rep.Jobs {
		if r.Err != nil {
			t.Errorf("job %d: cancellation surfaced as a job error: %v", r.Index, r.Err)
		}
		completed += len(r.Estimates)
	}
	if completed != rep.Trials {
		t.Errorf("report counts %d trials, jobs hold %d estimates", rep.Trials, completed)
	}
}

// benchJobs builds the 8-session batch the scheduler benchmark drives.
func benchJobs() []Job {
	sys := rfidest.NewSystem(50000, rfidest.WithSeed(11), rfidest.WithSynthetic())
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2}
	}
	return jobs
}

// BenchmarkSchedSequential is the baseline: the same 8-session batch on
// one pooled worker (depth-first, session after session).
func BenchmarkSchedSequential(b *testing.B) {
	jobs := benchJobs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Seed: 3, Workers: 1}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedInterleaved runs the batch breadth-first on the round
// scheduler — the per-round dispatch overhead is the price under test.
func BenchmarkSchedInterleaved(b *testing.B) {
	jobs := benchJobs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Seed: 3, Interleave: true}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
