package fleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rfidest"
	"rfidest/internal/obs"
)

// faultedBatch is the acceptance workload from the issue: a healthy job
// estimating through a lossy channel with retries, an all-idle job whose
// every attempt saturates (so it must degrade, not fail), and a clean
// control job with no faults and no retries.
func faultedBatch() []Job {
	lossy := rfidest.NewSystem(20000, rfidest.WithSeed(91),
		rfidest.WithFaults(rfidest.FaultSeverity(0.5)))
	empty := rfidest.NewSystem(0, rfidest.WithSeed(92))
	clean := rfidest.NewSystem(15000, rfidest.WithSeed(93))
	return []Job{
		{Name: "lossy", System: lossy, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1,
			Trials: 3, Retries: 2, RetryBackoffSeconds: 0.25},
		{Name: "empty", System: empty, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1,
			Trials: 2, Retries: 1, RetryBackoffSeconds: 0.5},
		{Name: "clean", System: clean, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1,
			Trials: 2},
	}
}

// TestRunFaultedBatchDegradesInsteadOfFailing is the tentpole acceptance
// test: with faults and retries on, a mixed batch completes with zero
// failed jobs, Degraded is set exactly on the jobs whose retries were
// exhausted, and the observer's fault/retry counters replay
// bit-identically across two identical runs.
func TestRunFaultedBatchDegradesInsteadOfFailing(t *testing.T) {
	run := func() (*Report, obs.Snapshot) {
		reg := obs.NewRegistry()
		rep, err := Run(context.Background(),
			Config{Seed: 0xfa17, Workers: 3, Observer: reg}, faultedBatch())
		if err != nil {
			t.Fatal(err)
		}
		return rep, reg.Snapshot()
	}
	rep, snap := run()

	if rep.Failed != 0 || rep.Skipped != 0 {
		t.Fatalf("faulted batch must not fail jobs: failed=%d skipped=%d", rep.Failed, rep.Skipped)
	}
	byName := map[string]JobResult{}
	for _, r := range rep.Jobs {
		if r.Err != nil {
			t.Fatalf("job %s errored: %v", r.Label(), r.Err)
		}
		byName[r.Label()] = r
	}

	empty := byName["empty"]
	if !empty.Degraded {
		t.Fatal("all-idle job with exhausted retries must be Degraded")
	}
	if empty.DegradedTrials != 2 || len(empty.Estimates) != 2 {
		t.Fatalf("empty job: degraded trials %d / estimates %d, want 2/2", empty.DegradedTrials, len(empty.Estimates))
	}
	// Every attempt saturates, so each trial burns its full retry budget.
	if empty.Retries != 2*empty.Job.Retries {
		t.Fatalf("empty job retries = %d, want %d", empty.Retries, 2*empty.Job.Retries)
	}
	// One 0.5 s backoff per trial (Retries = 1, so no exponential step).
	if empty.BackoffSeconds != 1.0 {
		t.Fatalf("empty job backoff = %v s, want 1.0", empty.BackoffSeconds)
	}
	for _, est := range empty.Estimates {
		if !est.Saturated {
			t.Fatal("accepted empty-population estimate lost its Saturated flag")
		}
	}

	clean := byName["clean"]
	if clean.Degraded || clean.Retries != 0 || clean.BackoffSeconds != 0 {
		t.Fatalf("clean control job picked up degradation state: %+v", clean)
	}

	lossy := byName["lossy"]
	if len(lossy.Estimates) != 3 {
		t.Fatalf("lossy job completed %d trials, want 3", len(lossy.Estimates))
	}

	if want := lossy.Retries + empty.Retries; rep.Retries != want {
		t.Fatalf("report retries = %d, want %d", rep.Retries, want)
	}
	wantDegraded := 0
	for _, r := range rep.Jobs {
		if r.Degraded {
			wantDegraded++
		}
	}
	if rep.Degraded != wantDegraded || !empty.Degraded {
		t.Fatalf("report degraded = %d, want %d", rep.Degraded, wantDegraded)
	}

	// The injector's schedule is a pure function of (seed, plan, salts):
	// the observer's fault and retry counters must replay bit-identically.
	if snap.Faults.Frames == 0 || snap.Faults.Sessions == 0 {
		t.Fatalf("lossy job reported no fault activity: %+v", snap.Faults)
	}
	if snap.Retries != int64(rep.Retries) {
		t.Fatalf("registry retries %d != report retries %d", snap.Retries, rep.Retries)
	}
	rep2, snap2 := run()
	if !reflect.DeepEqual(stripWall(rep), stripWall(rep2)) {
		t.Fatal("faulted batch is not deterministic across runs")
	}
	if !reflect.DeepEqual(snap.Faults, snap2.Faults) {
		t.Fatalf("fault counters differ across identical runs:\n%+v\n%+v", snap.Faults, snap2.Faults)
	}
	if snap.Retries != snap2.Retries || snap.Degraded != snap2.Degraded {
		t.Fatal("retry/degraded counters differ across identical runs")
	}
}

// TestRunFaultedBatchDeterministicAcrossWorkers extends the worker-count
// determinism contract to the retrying, fault-injecting configuration.
func TestRunFaultedBatchDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: 0xfa17, Workers: 1}
	seq, err := Run(context.Background(), cfg, faultedBatch())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(context.Background(), cfg, faultedBatch())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(seq), stripWall(par)) {
		t.Fatal("faulted batch differs across worker counts")
	}
}

// TestRunTrialTimeout pins the TrialTimeout contract: an expired per-trial
// deadline fails the attempt at session start; with retries the job
// degrades, without them it fails — and a generous deadline is inert.
func TestRunTrialTimeout(t *testing.T) {
	sys := rfidest.NewSystem(5000, rfidest.WithSeed(94))
	job := Job{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 2}

	base, err := Run(context.Background(), Config{Seed: 9}, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := Run(context.Background(), Config{Seed: 9, TrialTimeout: time.Hour}, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(base), stripWall(roomy)) {
		t.Fatal("a generous trial timeout perturbed results")
	}

	// A deadline that expires before the session opens: without retries the
	// job fails at trial 0 ...
	tight := Config{Seed: 9, TrialTimeout: time.Nanosecond}
	rep, err := Run(context.Background(), tight, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Jobs[0].Err == nil || rep.Jobs[0].FailedAt != 0 {
		t.Fatalf("timeout without retries should fail the job: %+v", rep.Jobs[0])
	}
	// ... and with retries it degrades instead, completing no trials but
	// poisoning neither the batch nor sibling jobs.
	retrying := job
	retrying.Retries = 2
	rep, err = Run(context.Background(), tight, []Job{retrying})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("timeout with retries must not fail the job: %+v", rep.Jobs[0])
	}
	if !rep.Jobs[0].Degraded || rep.Jobs[0].Err != nil {
		t.Fatalf("timeout with retries should degrade: %+v", rep.Jobs[0])
	}

	if _, err := Run(context.Background(), Config{Seed: 9, TrialTimeout: -time.Second}, []Job{job}); err == nil {
		t.Fatal("negative trial timeout accepted")
	}
}

// TestRunRetryValidation: degenerate job retry parameters are rejected
// before any trial runs.
func TestRunRetryValidation(t *testing.T) {
	sys := rfidest.NewSystem(100, rfidest.WithSeed(1))
	bad := []Job{{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Retries: -1}}
	if _, err := Run(context.Background(), Config{}, bad); err == nil {
		t.Fatal("negative retries accepted")
	}
	nanBackoff := []Job{{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1,
		RetryBackoffSeconds: nan()}}
	if _, err := Run(context.Background(), Config{}, nanBackoff); err == nil {
		t.Fatal("NaN retry backoff accepted")
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestPerEstimatorCountsDegradation: the CLI's per-estimator breakdown
// carries the new degradation counters.
func TestPerEstimatorCountsDegradation(t *testing.T) {
	rep, err := Run(context.Background(), Config{Seed: 0xfa17}, faultedBatch())
	if err != nil {
		t.Fatal(err)
	}
	groups := rep.PerEstimator()
	if len(groups) != 1 || groups[0].Estimator != "BFCE" {
		t.Fatalf("unexpected groups: %+v", groups)
	}
	if groups[0].Degraded != rep.Degraded || groups[0].Retries != rep.Retries {
		t.Fatalf("group degradation accounting diverges from report: %+v vs %+v", groups[0], rep)
	}
}
