package bloom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(4096, 3, 1)
	for i := uint64(0); i < 500; i++ {
		f.Add(i * 7919)
	}
	for i := uint64(0); i < 500; i++ {
		if !f.Contains(i * 7919) {
			t.Fatalf("false negative for %d", i*7919)
		}
	}
}

func TestFalsePositiveRateNearDesign(t *testing.T) {
	const n, fp = 2000, 0.01
	f := NewForCapacity(n, fp, 2)
	for i := uint64(0); i < n; i++ {
		f.Add(i)
	}
	hits := 0
	const probes = 20000
	for i := uint64(0); i < probes; i++ {
		if f.Contains(1<<40 + i) {
			hits++
		}
	}
	rate := float64(hits) / probes
	if rate > 3*fp {
		t.Fatalf("observed fp rate %v, designed %v", rate, fp)
	}
	if pred := f.FalsePositiveRate(); math.Abs(pred-rate) > 0.02 {
		t.Fatalf("predicted fp %v far from observed %v", pred, rate)
	}
}

func TestCardinalityEstimate(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		f := New(65536, 3, 3)
		for i := 0; i < n; i++ {
			f.Add(uint64(i) + 17)
		}
		got := f.Cardinality()
		if math.Abs(got-float64(n))/float64(n) > 0.05 {
			t.Fatalf("cardinality of %d items estimated as %v", n, got)
		}
	}
}

func TestCardinalityEmptyAndSaturated(t *testing.T) {
	f := New(64, 2, 4)
	if f.Cardinality() != 0 {
		t.Fatal("empty filter cardinality != 0")
	}
	for i := uint64(0); i < 10000; i++ {
		f.Add(i)
	}
	if c := f.Cardinality(); math.IsInf(c, 0) || math.IsNaN(c) {
		t.Fatalf("saturated filter cardinality = %v", c)
	}
}

func TestUnionAlgebra(t *testing.T) {
	a := New(65536, 3, 5)
	b := New(65536, 3, 5)
	// A = [0, 3000), B = [2000, 5000): union 5000, intersection 1000.
	for i := uint64(0); i < 3000; i++ {
		a.Add(i)
	}
	for i := uint64(2000); i < 5000; i++ {
		b.Add(i)
	}
	u, err := a.UnionCardinality(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-5000)/5000 > 0.05 {
		t.Fatalf("union cardinality %v, want ~5000", u)
	}
	inter, err := a.IntersectCardinality(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inter-1000) > 300 {
		t.Fatalf("intersection cardinality %v, want ~1000", inter)
	}
	// Materialized union agrees with the counting version.
	uf, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uf.Cardinality()-u) > 1e-9 {
		t.Fatalf("materialized union %v vs counted %v", uf.Cardinality(), u)
	}
	// Union contains members of both sides.
	if !uf.Contains(100) || !uf.Contains(4500) {
		t.Fatal("union lost members")
	}
}

func TestIncompatibleFilters(t *testing.T) {
	a := New(64, 2, 1)
	for _, b := range []*Filter{New(128, 2, 1), New(64, 3, 1), New(64, 2, 9)} {
		if _, err := a.Union(b); err == nil {
			t.Fatal("incompatible union accepted")
		}
		if _, err := a.UnionCardinality(b); err == nil {
			t.Fatal("incompatible union cardinality accepted")
		}
		if _, err := a.IntersectCardinality(b); err == nil {
			t.Fatal("incompatible intersection accepted")
		}
	}
}

func TestNewForCapacityShape(t *testing.T) {
	f := NewForCapacity(10000, 0.01, 1)
	// Optimal: w ≈ 9.59 bits/item, k ≈ 7.
	if f.W() < 90000 || f.W() > 100000 {
		t.Fatalf("w = %d", f.W())
	}
	if f.K() < 6 || f.K() > 8 {
		t.Fatalf("k = %d", f.K())
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 1) },
		func() { New(1, 0, 1) },
		func() { NewForCapacity(0, 0.01, 1) },
		func() { NewForCapacity(10, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFromBitsMatchesTheorem2(t *testing.T) {
	// A half-full 8192-bit vector with k=3: n̂ = -(w/k)·ln(1-fill).
	set := make([]bool, 8192)
	for i := 0; i < 4096; i++ {
		set[i] = true
	}
	f := FromBits(set, 3, 0)
	want := -8192.0 / 3 * math.Log(0.5)
	if math.Abs(f.Cardinality()-want) > 1e-9 {
		t.Fatalf("FromBits cardinality %v, want %v", f.Cardinality(), want)
	}
}

func TestUnionCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(2048, 2, 7), New(2048, 2, 7)
		for _, x := range xs {
			a.Add(uint64(x))
		}
		for _, y := range ys {
			b.Add(uint64(y))
		}
		ab, _ := a.UnionCardinality(b)
		ba, _ := b.UnionCardinality(a)
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionUpperBoundsPartsProperty(t *testing.T) {
	// |A ∪ B| estimate is at least each side's own estimate (monotone
	// fill under OR).
	f := func(xs, ys []uint16) bool {
		a, b := New(2048, 2, 8), New(2048, 2, 8)
		for _, x := range xs {
			a.Add(uint64(x))
		}
		for _, y := range ys {
			b.Add(uint64(y))
		}
		u, _ := a.UnionCardinality(b)
		return u >= a.Cardinality()-1e-9 && u >= b.Cardinality()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
