// Package bloom is a standalone Bloom filter with cardinality estimation —
// the reader-side data structure BFCE builds over the air, offered as a
// library in its own right. Besides membership (the classic Bloom use),
// the filter estimates how many distinct items were inserted from its fill
// fraction (Swamidass–Baldi), which is exactly Theorem 2 of the paper with
// p = 1:
//
//	n̂ = -(w/k) · ln(1 - fill)
//
// and supports the same set algebra differential BFCE snapshots use: the
// union of two same-parameter filters is their bitwise OR, and
// intersection cardinality follows by inclusion–exclusion.
package bloom

import (
	"errors"
	"math"

	"rfidest/internal/bitset"
	"rfidest/internal/hash"
	"rfidest/internal/xrand"
)

// Filter is a w-bit Bloom filter with k seeded hash functions.
type Filter struct {
	bits *bitset.Set
	w    int
	k    int
	seed uint64
}

// New returns an empty filter of w bits with k hashes under seed. Filters
// are compatible for set algebra iff all three parameters match. It panics
// if w or k is non-positive.
func New(w, k int, seed uint64) *Filter {
	if w <= 0 || k <= 0 {
		panic("bloom: w and k must be positive")
	}
	return &Filter{bits: bitset.New(w), w: w, k: k, seed: seed}
}

// NewForCapacity returns a filter sized for n items at the given false
// positive rate, using the standard optima w = -n·ln(fp)/ln2² and
// k = (w/n)·ln2. It panics on degenerate arguments.
func NewForCapacity(n int, fp float64, seed uint64) *Filter {
	if n <= 0 || fp <= 0 || fp >= 1 {
		panic("bloom: invalid capacity parameters")
	}
	w := int(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(w) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(w, k, seed)
}

// W returns the filter length in bits.
func (f *Filter) W() int { return f.w }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Add inserts an item.
func (f *Filter) Add(item uint64) {
	for j := 0; j < f.k; j++ {
		f.bits.Set1(hash.UniformSlot(item, xrand.Combine(f.seed, uint64(j)), f.w))
	}
}

// Contains reports whether item may have been inserted (no false
// negatives; false positives at the design rate).
func (f *Filter) Contains(item uint64) bool {
	for j := 0; j < f.k; j++ {
		if !f.bits.Get(hash.UniformSlot(item, xrand.Combine(f.seed, uint64(j)), f.w)) {
			return false
		}
	}
	return true
}

// Fill returns the fraction of set bits.
func (f *Filter) Fill() float64 { return f.bits.Fraction() }

// Cardinality estimates the number of distinct items inserted
// (Swamidass–Baldi). A saturated filter estimates from one unset bit's
// worth of resolution.
func (f *Filter) Cardinality() float64 {
	return cardinalityFromFill(f.Fill(), f.w, f.k)
}

func cardinalityFromFill(fill float64, w, k int) float64 {
	if fill <= 0 {
		return 0
	}
	max := 1 - 0.5/float64(w)
	if fill > max {
		fill = max
	}
	return -float64(w) / float64(k) * math.Log1p(-fill)
}

// FalsePositiveRate returns the filter's current false positive
// probability, fill^k.
func (f *Filter) FalsePositiveRate() float64 {
	return math.Pow(f.Fill(), float64(f.k))
}

func (f *Filter) compatible(o *Filter) error {
	if f.w != o.w || f.k != o.k || f.seed != o.seed {
		return errors.New("bloom: incompatible filter parameters")
	}
	return nil
}

// Union returns a new filter representing the union of f and o (bitwise
// OR). The operands are unchanged.
func (f *Filter) Union(o *Filter) (*Filter, error) {
	if err := f.compatible(o); err != nil {
		return nil, err
	}
	u := &Filter{bits: f.bits.Clone().Or(o.bits), w: f.w, k: f.k, seed: f.seed}
	return u, nil
}

// UnionCardinality estimates |A ∪ B| without materializing the union.
func (f *Filter) UnionCardinality(o *Filter) (float64, error) {
	if err := f.compatible(o); err != nil {
		return 0, err
	}
	fill := float64(f.bits.OrCount(o.bits)) / float64(f.w)
	return cardinalityFromFill(fill, f.w, f.k), nil
}

// IntersectCardinality estimates |A ∩ B| by inclusion–exclusion. The
// result is clamped at 0 (the three estimates carry independent noise).
func (f *Filter) IntersectCardinality(o *Filter) (float64, error) {
	u, err := f.UnionCardinality(o)
	if err != nil {
		return 0, err
	}
	inter := f.Cardinality() + o.Cardinality() - u
	if inter < 0 {
		inter = 0
	}
	return inter, nil
}

// FromBits constructs a filter over an existing observation vector (true =
// set bit). BFCE snapshots become Filters this way: the over-the-air Bloom
// vector, reinterpreted for archive-side set algebra. Note the persistence
// thinning: a snapshot taken at persistence p estimates n·p distinct
// "effective insertions", so callers must divide by p.
func FromBits(set []bool, k int, seed uint64) *Filter {
	return &Filter{bits: bitset.FromBools(set), w: len(set), k: k, seed: seed}
}
