package xrand

import (
	"math"
	"testing"
)

func TestNormMoments(t *testing.T) {
	r := New(11)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(12)
	const trials = 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.NormMeanStd(10, 2)
	}
	if mean := sum / trials; math.Abs(mean-10) > 0.05 {
		t.Fatalf("NormMeanStd mean = %v, want ~10", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p, trials = 0.2, 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / trials
	want := (1 - p) / p // E[failures before first success]
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(14)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestGeometricHalfDistribution(t *testing.T) {
	r := New(15)
	const trials = 200000
	counts := make([]int, 20)
	for i := 0; i < trials; i++ {
		j := r.GeometricHalf()
		if j < len(counts) {
			counts[j]++
		}
	}
	for j := 0; j < 8; j++ {
		want := float64(trials) * math.Pow(0.5, float64(j+1))
		got := float64(counts[j])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Fatalf("GeometricHalf P(%d): got %v, want ~%v", j, got, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(16)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n, 1) != n")
	}
}

func TestBinomialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial with p>1 did not panic")
		}
	}()
	New(1).Binomial(10, 1.5)
}

// testBinomialMoments checks sample mean and variance of Binomial(n, p)
// against np and np(1-p) within 6 standard errors.
func testBinomialMoments(t *testing.T, seed uint64, n int, p float64) {
	t.Helper()
	r := New(seed)
	const trials = 50000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := float64(r.Binomial(n, p))
		if v < 0 || v > float64(n) {
			t.Fatalf("Binomial(%d,%v) out of range: %v", n, p, v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	seMean := math.Sqrt(wantVar / trials)
	if math.Abs(mean-wantMean) > 6*seMean+1e-9 {
		t.Fatalf("Binomial(%d,%v) mean = %v, want %v (se %v)", n, p, mean, wantMean, seMean)
	}
	// Variance of the sample variance ~ 2*var^2/trials for near-normal.
	seVar := wantVar * math.Sqrt(3.0/trials) * 3
	if math.Abs(variance-wantVar) > 6*seVar+1e-9 {
		t.Fatalf("Binomial(%d,%v) variance = %v, want %v", n, p, variance, wantVar)
	}
}

func TestBinomialSmallNP(t *testing.T)  { testBinomialMoments(t, 21, 100, 0.02) }
func TestBinomialMediumNP(t *testing.T) { testBinomialMoments(t, 22, 1000, 0.05) }
func TestBinomialLargeNP(t *testing.T)  { testBinomialMoments(t, 23, 100000, 0.3) }
func TestBinomialHighP(t *testing.T)    { testBinomialMoments(t, 24, 5000, 0.9) }
func TestBinomialHalfP(t *testing.T)    { testBinomialMoments(t, 25, 4096, 0.5) }

func TestBinomialBTRSTails(t *testing.T) {
	// The BTRS path must not produce impossible values over many draws.
	r := New(26)
	for i := 0; i < 200000; i++ {
		v := r.Binomial(10000, 0.01)
		if v < 0 || v > 10000 {
			t.Fatalf("out-of-range binomial draw %d", v)
		}
	}
}

func TestMultinomialConservation(t *testing.T) {
	r := New(27)
	occ := r.Multinomial(12345, 64)
	total := 0
	for _, c := range occ {
		total += c
	}
	if total != 12345 {
		t.Fatalf("Multinomial lost balls: %d", total)
	}
}

func TestMultinomialUniform(t *testing.T) {
	r := New(28)
	const balls, bins = 640000, 64
	occ := r.Multinomial(balls, bins)
	want := float64(balls) / bins
	for i, c := range occ {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("bin %d occupancy %d deviates from %v", i, c, want)
		}
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialBTRS(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(3000000, 0.01)
	}
}

func BenchmarkBinomialInversion(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(1000000, 1e-6)
	}
}
