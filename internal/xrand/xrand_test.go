package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64AvalancheNonzero(t *testing.T) {
	// Flipping any single input bit must change the output.
	x := uint64(0xdeadbeefcafef00d)
	base := Mix64(x)
	for b := 0; b < 64; b++ {
		if Mix64(x^(1<<uint(b))) == base {
			t.Fatalf("Mix64 collision when flipping bit %d", b)
		}
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 is not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Fatal("Mix64(42) == Mix64(43)")
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine must be order sensitive")
	}
	if Combine(1) == Combine(1, 0) {
		t.Fatal("Combine must be length sensitive")
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	// Reference values for seed 0 from the public-domain reference
	// implementation by Sebastiano Vigna.
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, 1, 2, 3)
	b := NewStream(7, 1, 2, 4)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("sibling streams collided on %d of 64 draws", same)
	}
}

func TestNewStreamReproducible(t *testing.T) {
	a := NewStream(7, 9)
	b := NewStream(7, 9)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream not reproducible at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := New(3)
	const n, trials = 7, 70000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nBound(t *testing.T) {
	r := New(4)
	for _, n := range []uint64{1, 2, 3, 1 << 40, math.MaxUint64} {
		for i := 0; i < 100; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	f := func(a, b uint32) bool {
		hi, lo := mul64(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(6)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli rate = %v, want ~%v", rate, p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(7)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(8)
	s := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", s)
	}
}
