package xrand

import "math"

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *Rand) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) sequence, i.e. a value g >= 0 with P(g = t) = (1-p)^t * p.
// It panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric with p out of (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: g = floor(ln(u) / ln(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log1p(-p)))
}

// GeometricHalf returns a slot index j >= 0 with P(j = t) = 2^{-(t+1)},
// the distribution used by lottery-frame (LOF/PET-style) hashing. It is
// equivalent to counting leading failures of a fair coin.
func (r *Rand) GeometricHalf() int {
	j := 0
	for {
		bits := r.Uint64()
		for b := 0; b < 64; b++ {
			if bits&1 == 1 {
				return j
			}
			bits >>= 1
			j++
		}
	}
}

// Binomial returns a Binomial(n, p) variate. It is exact (not a normal
// approximation): small expectations use geometric-skip inversion, large
// expectations use the BTRS transformed-rejection sampler of Hörmann (1993).
// It panics if n < 0 or p outside [0, 1].
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 {
		panic("xrand: Binomial with invalid parameters")
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if float64(n)*p < 10 {
		return r.binomialInversion(n, p)
	}
	return r.binomialBTRS(n, p)
}

// binomialInversion counts successes by skipping over failures with
// geometric jumps; O(np) expected time, exact.
func (r *Rand) binomialInversion(n int, p float64) int {
	count := 0
	i := 0
	for {
		i += r.Geometric(p) + 1
		if i > n {
			return count
		}
		count++
	}
}

// binomialBTRS implements the BTRS algorithm (Hörmann, "The generation of
// binomial random variates", JSCS 1993), exact for np >= 10 and p <= 0.5.
func (r *Rand) binomialBTRS(n int, p float64) int {
	nf := float64(n)
	spq := math.Sqrt(nf * p * (1 - p))
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	urvr := 0.86 * vr
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / (1 - p))
	m := math.Floor((nf + 1) * p)
	h := lgamma(m+1) + lgamma(nf-m+1)

	for {
		v := r.Float64()
		var u float64
		if v <= urvr {
			u = v/vr - 0.43
			return int(math.Floor((2*a/(0.5-math.Abs(u))+b)*u + c))
		}
		if v >= vr {
			u = r.Float64() - 0.5
		} else {
			u = v/vr - 0.93
			u = sign(u)*0.5 - u
			v = vr * r.Float64()
		}
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if k < 0 || k > nf {
			continue
		}
		v = v * alpha / (a/(us*us) + b)
		if math.Log(v) <= h-lgamma(k+1)-lgamma(nf-k+1)+(k-m)*lpq {
			return int(k)
		}
	}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Multinomial throws balls balls uniformly into bins bins and returns the
// occupancy vector. It runs in O(balls) time.
func (r *Rand) Multinomial(balls, bins int) []int {
	occ := make([]int, bins)
	for i := 0; i < balls; i++ {
		occ[r.Intn(bins)]++
	}
	return occ
}
