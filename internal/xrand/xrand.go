// Package xrand provides the deterministic pseudo-random number generators
// used throughout the simulator.
//
// Everything in this repository that consumes randomness — tag populations,
// persistence decisions, frame seeds, experiment trials — draws from this
// package, so a single 64-bit seed pins down an entire experiment. Two
// generators are provided:
//
//   - SplitMix64: a tiny, stateless-per-step mixer. It is used both as a
//     generator for short streams and as the seeding/mixing function for
//     everything else (see Mix64).
//   - Rand: xoshiro256**, a fast general-purpose generator with 256 bits of
//     state, suitable for the long streams a frame simulation consumes.
//
// The package deliberately does not use math/rand: the simulator needs
// stable cross-version output (math/rand's Source behaviour is pinned, but
// its convenience methods are not part of our reproducibility contract) and
// cheap stream splitting keyed by structured tuples (experiment, trial,
// frame), which Mix64/NewStream provide directly.
package xrand

// golden64 is the 64-bit golden ratio increment used by SplitMix64.
const golden64 = 0x9e3779b97f4a7c15

// Mix64 applies the SplitMix64 finalizer to x. It is a high-quality 64-bit
// mixing function: every input bit affects every output bit. It is the
// basis for seeding, stream splitting and the simulator's hash functions.
func Mix64(x uint64) uint64 {
	x += golden64
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Combine folds any number of 64-bit words into a single well-mixed seed.
// It is used to derive per-(experiment, trial, frame, ...) streams from a
// root seed without correlation between sibling streams.
func Combine(words ...uint64) uint64 {
	h := uint64(0x8c21_6fb2_1c7f_92d3)
	for _, w := range words {
		h = Mix64(h ^ w)
	}
	return h
}

// SplitMix64 is a 64-bit PRNG with 64 bits of state. Its period is 2^64 and
// every step is a single Mix64; it is primarily used to seed Rand and for
// short decision streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden64
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is an xoshiro256** generator. The zero value is not usable; construct
// with New or NewStream.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a Rand seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation (avoids the all-zero state and decorrelates
// adjacent seeds).
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	return &Rand{
		s0: sm.Uint64(),
		s1: sm.Uint64(),
		s2: sm.Uint64(),
		s3: sm.Uint64(),
	}
}

// NewStream returns a Rand for the sub-stream identified by the given words
// under the root seed. Sibling streams (differing in any word) are
// statistically independent for simulation purposes.
func NewStream(seed uint64, words ...uint64) *Rand {
	return New(Combine(append([]uint64{seed}, words...)...))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire's method with full 64x64→128 multiply via math/bits-free
	// splitting: use rejection on the low word.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
