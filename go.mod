module rfidest

go 1.22
