package rfidest

import (
	"errors"
	"fmt"

	"rfidest/internal/core"
	"rfidest/internal/inventory"
	"rfidest/internal/tags"
)

// Inventory is the outcome of a full C1G2 tag identification run — the
// exact-counting baseline estimation competes with.
type Inventory struct {
	Identified int     // tags read
	Slots      int     // ALOHA slots walked
	Rounds     int     // frames opened
	Seconds    float64 // air time under EPCglobal C1G2
	Complete   bool    // every tag was identified
}

// Inventory runs a full framed-slotted-ALOHA identification (Gen2 DFSA
// with Schoute backlog sizing) of the system's population and returns the
// exact count with its air-time cost. Use it to decide, for a given scale,
// whether counting exactly or estimating is cheaper — BFCE's constant
// 0.19 s beats inventory beyond a few dozen tags.
func (s *System) Inventory() (Inventory, error) {
	res, err := inventory.Run(s.n, inventory.Config{}, s.seed^s.sessions.Add(1))
	if err != nil {
		return Inventory{}, err
	}
	return Inventory{
		Identified: res.Identified,
		Slots:      res.Slots,
		Rounds:     res.Rounds,
		Seconds:    res.Seconds,
		Complete:   res.Complete,
	}, nil
}

// SetSnapshot is a pinned Bloom-filter snapshot of a System, comparable
// with other snapshots from the same Tracker (see Tracker).
type SetSnapshot struct {
	inner *core.Snapshot
}

// Cardinality returns the snapshot's own cardinality estimate.
func (s *SetSnapshot) Cardinality() float64 { return s.inner.Cardinality() }

// Tracker takes comparable snapshots of evolving deployments and answers
// set-level questions about them: how many tags two rounds share, how many
// arrived, how many departed — each from one constant-time frame per
// round, with no tag identification at all (anonymous tracking in the
// spirit of EZB [18], built on BFCE's frame).
type Tracker struct {
	differ *core.Differ
}

// NewTracker prepares a tracker for deployments of roughly expectedN tags
// (the persistence probability is tuned once, for that scale, so every
// snapshot is comparable). All randomness is pinned by seed.
func NewTracker(expectedN int, seed uint64) (*Tracker, error) {
	if expectedN < 1 {
		return nil, errors.New("rfidest: tracker needs a positive expected scale")
	}
	cfg := core.DefaultConfig()
	pn, ok := core.OptimalPn(float64(expectedN), cfg.K, cfg.W, cfg.PDenom, cfg.Epsilon, cfg.Delta)
	if !ok {
		pn = core.FallbackPn(float64(expectedN), cfg.K, cfg.W, cfg.PDenom)
	}
	d, err := core.NewDiffer(cfg, pn, seed)
	if err != nil {
		return nil, err
	}
	return &Tracker{differ: d}, nil
}

// Snapshot records one comparable snapshot of sys. The system must be
// tag-level (not WithSynthetic): set algebra needs tags that replay
// deterministically across rounds.
func (t *Tracker) Snapshot(sys *System) (*SetSnapshot, error) {
	if sys.synthetic {
		return nil, errors.New("rfidest: tracking requires a tag-level system (synthetic engines cannot pin shared tags)")
	}
	snap, err := t.differ.Take(sys.session())
	if err != nil {
		return nil, err
	}
	return &SetSnapshot{inner: snap}, nil
}

// Union estimates the number of distinct tags seen across both snapshots.
func Union(a, b *SetSnapshot) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("rfidest: nil snapshot")
	}
	return core.Union(a.inner, b.inner)
}

// Intersection estimates the number of tags present in both snapshots.
func Intersection(a, b *SetSnapshot) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("rfidest: nil snapshot")
	}
	return core.Intersection(a.inner, b.inner)
}

// Arrivals estimates how many tags of snapshot b were absent from a.
func Arrivals(a, b *SetSnapshot) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("rfidest: nil snapshot")
	}
	return core.Arrivals(a.inner, b.inner)
}

// Departures estimates how many tags of snapshot a are gone by b.
func Departures(a, b *SetSnapshot) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("rfidest: nil snapshot")
	}
	return core.Departures(a.inner, b.inner)
}

// PopulationAt builds the tag-level System holding tags [start, start+n)
// of an underlying tag universe identified by universeSeed. Windows of the
// same universe share the tags their ranges overlap on, so consecutive
// calls model an evolving deployment (tags [0, 20k) departed, tags
// [100k, 120k) arrived, ...). It is a convenience for tracking demos and
// tests; production code would snapshot whatever real populations it has.
func PopulationAt(universeSeed uint64, start, n int) *System {
	if start < 0 || n < 0 {
		panic(fmt.Sprintf("rfidest: invalid window [%d, %d+%d)", start, start, n))
	}
	sys := NewSystem(start+n, WithSeed(universeSeed))
	sys.pop = &tags.Population{Tags: sys.pop.Tags[start:], Dist: sys.pop.Dist, Seed: sys.pop.Seed}
	sys.n = n
	return sys
}

// PopulationWithout builds the tag-level System holding tags [0, n) of the
// universe except the range [gapFrom, gapTo) — a deployment from which a
// known block of tags has been removed. Missing-tag detection demos and
// tests use it as the "present" side against the intact [0, n) inventory.
func PopulationWithout(universeSeed uint64, n, gapFrom, gapTo int) *System {
	if n < 0 || gapFrom < 0 || gapTo < gapFrom || gapTo > n {
		panic(fmt.Sprintf("rfidest: invalid gap [%d, %d) in [0, %d)", gapFrom, gapTo, n))
	}
	full := NewSystem(n, WithSeed(universeSeed))
	kept := make([]tags.Tag, 0, n-(gapTo-gapFrom))
	kept = append(kept, full.pop.Tags[:gapFrom]...)
	kept = append(kept, full.pop.Tags[gapTo:]...)
	full.pop = &tags.Population{Tags: kept, Dist: full.pop.Dist, Seed: full.pop.Seed}
	full.n = len(kept)
	return full
}
