// Benchmark harness: one benchmark per table/figure of the paper (the
// bench both times the regeneration and prints the regenerated table, so
// `go test -bench=.` reproduces the full evaluation), plus micro-benchmarks
// of the estimation hot paths.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured results
// are recorded in EXPERIMENTS.md.
package rfidest_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rfidest"
	"rfidest/internal/experiment"
	"rfidest/internal/fleet"
)

// printedTables dedupes table output across the benchmark framework's
// calibration reruns (the tables are deterministic per Options, so the
// first print is the print).
var printedTables = map[string]bool{}

// benchTable runs one experiment b.N times and prints the resulting table
// once.
func benchTable(b *testing.B, runner experiment.Runner, trials int) {
	b.Helper()
	o := experiment.DefaultOptions()
	o.Trials = trials
	var tab *experiment.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab = runner(o)
	}
	b.StopTimer()
	if printedTables[tab.Title] {
		return
	}
	printedTables[tab.Title] = true
	fmt.Println()
	if err := tab.Render(os.Stdout); err != nil {
		b.Fatal(err)
	}
}

// ---- the paper's figures (Fig. 1 is a concept sketch, Fig. 2 a protocol
// diagram and Table I a symbol table; everything with data is below). ----

func BenchmarkFig3Feasibility(b *testing.B)        { benchTable(b, experiment.Fig3, 0) }
func BenchmarkFig4GammaRange(b *testing.B)         { benchTable(b, experiment.Fig4, 0) }
func BenchmarkFig5Monotonicity(b *testing.B)       { benchTable(b, experiment.Fig5, 0) }
func BenchmarkFig6Distributions(b *testing.B)      { benchTable(b, experiment.Fig6, 0) }
func BenchmarkFig7aAccuracyVsN(b *testing.B)       { benchTable(b, experiment.Fig7a, 0) }
func BenchmarkFig7bAccuracyVsEpsilon(b *testing.B) { benchTable(b, experiment.Fig7b, 0) }
func BenchmarkFig7cAccuracyVsDelta(b *testing.B)   { benchTable(b, experiment.Fig7c, 0) }

// BenchmarkFig8CDF uses 40 rounds per distribution instead of the paper's
// 100 to keep the bench under a minute; `cmd/experiments -run fig8` runs
// the full 100.
func BenchmarkFig8CDF(b *testing.B) { benchTable(b, experiment.Fig8, 40) }

func BenchmarkFig9ComparisonAccuracy(b *testing.B) { benchTable(b, experiment.Fig9, 0) }
func BenchmarkFig10ComparisonTime(b *testing.B)    { benchTable(b, experiment.Fig10, 0) }
func BenchmarkOverheadBudget(b *testing.B)         { benchTable(b, experiment.Overhead, 0) }

// ---- ablations of the paper's design choices (DESIGN.md §5). ----

func BenchmarkAblationK(b *testing.B)          { benchTable(b, experiment.AblationK, 6) }
func BenchmarkAblationW(b *testing.B)          { benchTable(b, experiment.AblationW, 6) }
func BenchmarkAblationC(b *testing.B)          { benchTable(b, experiment.AblationC, 10) }
func BenchmarkAblationRoughSlots(b *testing.B) { benchTable(b, experiment.AblationRoughSlots, 6) }
func BenchmarkAblationHashMode(b *testing.B)   { benchTable(b, experiment.AblationHashMode, 4) }
func BenchmarkAblationNoise(b *testing.B)      { benchTable(b, experiment.AblationNoise, 5) }
func BenchmarkAblationZOECost(b *testing.B)    { benchTable(b, experiment.AblationZOECost, 0) }
func BenchmarkAblationCapture(b *testing.B)    { benchTable(b, experiment.AblationCapture, 4) }
func BenchmarkBakeoff(b *testing.B)            { benchTable(b, experiment.Bakeoff, 0) }

// BenchmarkInventoryCrossover regenerates the exact-counting vs estimation
// comparison (the quantified version of §III-A's scoping argument).
func BenchmarkInventoryCrossover(b *testing.B) { benchTable(b, experiment.InventoryCrossover, 0) }

// BenchmarkMonitoring regenerates the drifting-deployment monitoring table
// (warm-started BFCE + differential snapshots).
func BenchmarkMonitoring(b *testing.B) { benchTable(b, experiment.Monitoring, 0) }

// BenchmarkMissingTags regenerates the missing-tag identification table.
func BenchmarkMissingTags(b *testing.B) { benchTable(b, experiment.MissingTags, 0) }

// BenchmarkGuarantee regenerates the empirical (eps,delta) validation with
// a reduced trial count (the full 200-run table is `cmd/experiments -run
// guarantee`).
func BenchmarkGuarantee(b *testing.B) { benchTable(b, experiment.Guarantee, 60) }

// ---- micro-benchmarks of the estimation hot paths. ----

// BenchmarkBFCETagLevel measures one full BFCE estimation over a
// materialized population of 100k tags (per-tag fidelity).
func BenchmarkBFCETagLevel(b *testing.B) {
	sys := rfidest.NewSystem(100000, rfidest.WithSeed(1))
	b.ResetTimer()
	var secs float64
	for i := 0; i < b.N; i++ {
		est, err := sys.EstimateBFCE(0.05, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		secs = est.Seconds
	}
	b.ReportMetric(secs, "airtime-s/op")
}

// BenchmarkBFCESynthetic measures one BFCE estimation over the exact
// synthetic channel (no per-tag iteration).
func BenchmarkBFCESynthetic(b *testing.B) {
	sys := rfidest.NewSystem(1000000, rfidest.WithSeed(2), rfidest.WithSynthetic())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.EstimateBFCE(0.05, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZOESynthetic measures one full ZOE estimation (its ~4000
// single-slot frames) over the synthetic channel.
func BenchmarkZOESynthetic(b *testing.B) {
	sys := rfidest.NewSystem(500000, rfidest.WithSeed(3), rfidest.WithSynthetic())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.EstimateWith("ZOE", 0.05, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetEstimate measures the fleet runner's parallel throughput:
// a mixed batch of 8 shared synthetic Systems × BFCE with 4 trials each,
// fanned out over GOMAXPROCS workers (sub-benchmark "seq" pins one worker
// as the scaling baseline). The per-op metric of interest is
// estimations/s; the baseline recording lives in results/BENCH_fleet.json.
func BenchmarkFleetEstimate(b *testing.B) {
	var jobs []fleet.Job
	for i := 0; i < 8; i++ {
		sys := rfidest.NewSystem(100000*(i+1), rfidest.WithSeed(uint64(i)), rfidest.WithSynthetic())
		jobs = append(jobs, fleet.Job{
			System: sys, Estimator: "BFCE", Epsilon: 0.05, Delta: 0.05, Trials: 4,
		})
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{fmt.Sprintf("par-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var rep *fleet.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = fleet.Run(context.Background(), fleet.Config{Workers: bc.workers, Seed: 0xbead}, jobs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Throughput, "estimations/s")
			b.ReportMetric(rep.MeanAbsErr, "mean-abs-err")
		})
	}
}

// BenchmarkFleetEstimateObs measures observability overhead on the exact
// workload of BenchmarkFleetEstimate at workers=1: leg "noop" runs
// uninstrumented (the default observer), leg "registry" attaches one
// shared metrics registry to every trial. scripts/obsbench.sh is the CI
// gate: the instrumented leg must stay within 5% of noop, pinning both
// the zero-allocation noop contract and the registry's lock-cheap claim.
func BenchmarkFleetEstimateObs(b *testing.B) {
	var jobs []fleet.Job
	for i := 0; i < 8; i++ {
		sys := rfidest.NewSystem(100000*(i+1), rfidest.WithSeed(uint64(i)), rfidest.WithSynthetic())
		jobs = append(jobs, fleet.Job{
			System: sys, Estimator: "BFCE", Epsilon: 0.05, Delta: 0.05, Trials: 4,
		})
	}
	for _, bc := range []struct {
		name     string
		observer rfidest.Observer
	}{
		{"noop", nil},
		{"registry", rfidest.NewMetrics()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var rep *fleet.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = fleet.Run(context.Background(),
					fleet.Config{Workers: 1, Seed: 0xbead, Observer: bc.observer}, jobs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Throughput, "estimations/s")
			b.ReportMetric(rep.MeanAbsErr, "mean-abs-err")
		})
	}
}

// BenchmarkFaults measures the fault-injection subsystem: leg "off" is the
// clean tag-level baseline, leg "sev-0.5" runs the same estimation through
// the severity-0.5 injector (burst noise, erasures, truncation, stalls),
// and leg "retry" adds the degenerate-round retry policy on top. The off
// vs sev overhead is the injector's word-level XOR cost; the baseline
// recording lives in results/BENCH_faults.json.
func BenchmarkFaults(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts []rfidest.SystemOption
		run  []rfidest.Option
	}{
		{"off", nil, nil},
		{"sev-0.5", []rfidest.SystemOption{rfidest.WithFaults(rfidest.FaultSeverity(0.5))}, nil},
		{"retry", []rfidest.SystemOption{rfidest.WithFaults(rfidest.FaultSeverity(0.5))},
			[]rfidest.Option{rfidest.WithRetry(2, 0)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sys := rfidest.NewSystem(100000, append([]rfidest.SystemOption{rfidest.WithSeed(5)}, bc.opts...)...)
			b.ResetTimer()
			var secs float64
			for i := 0; i < b.N; i++ {
				est, err := sys.Run(context.Background(),
					append([]rfidest.Option{rfidest.WithSalt(uint64(i))}, bc.run...)...)
				if err != nil {
					b.Fatal(err)
				}
				secs = est.Seconds
			}
			b.ReportMetric(secs, "airtime-s/op")
		})
	}
}

// BenchmarkSRCSynthetic measures one full SRC estimation (7 median rounds).
func BenchmarkSRCSynthetic(b *testing.B) {
	sys := rfidest.NewSystem(500000, rfidest.WithSeed(4), rfidest.WithSynthetic())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.EstimateWith("SRC", 0.05, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
