package rfidest

import (
	"context"
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/obs"
	"rfidest/internal/stats"
)

// Observer receives span hooks and metric events from estimation runs; see
// the internal/obs package for the hook taxonomy. The zero-cost default is
// NopObserver; Metrics is the aggregating implementation.
type Observer = obs.Observer

// NopObserver is the default observer: it does nothing and allocates
// nothing, so uninstrumented runs stay at benchmark parity.
var NopObserver Observer = obs.Nop

// MultiObserver tees hooks to several observers in order, dropping nil and
// NopObserver entries.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// Metrics is a concurrency-safe metrics registry implementing Observer:
// counters for slots, reader bits and tag transmissions; histograms for air
// time, probe rounds and estimation error. Snapshot it for JSON or
// expvar-style text export.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a Metrics registry.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metrics registry. One registry may observe
// any number of concurrent runs.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Run executes one estimation over the system: it opens a fresh session
// (counter-derived, or salt-addressed under WithSalt), runs the selected
// protocol to the accuracy requirement, and returns the estimate. With no
// options it runs BFCE at the paper's (0.05, 0.05) requirement.
//
// The context is checked before the run starts and again before every
// protocol round; the round in flight always completes, so a cancelled run
// stops at a round boundary with the session's seed stream intact. The
// session-counter and salt-addressing determinism contracts are unaffected
// — an uncancelled run is bit-identical regardless of ctx. A nil ctx is
// treated as context.Background().
//
// Run is safe for concurrent use against one shared System. It is exactly
// a StartRun/Step loop; callers that need to own the round schedule
// (interleaving, round-granular deadlines) use those directly.
func (s *System) Run(ctx context.Context, opts ...Option) (Estimate, error) {
	o := defaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxbg documented nil-ctx convenience default
	}
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	if err := validateTimeout(o.timeout); err != nil {
		return Estimate{}, err
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
		o.timeout = 0 // applied here; the RunSession must not arm a second timer
	}
	open := s.session
	if o.hasSalt {
		salt := o.salt
		open = func() *channel.Reader { return s.sessionAt(salt) }
	}
	return s.runOn(ctx, open, o)
}

// runOn validates the options, opens a session via open and drives the
// selected protocol's round machine to completion. It is the single
// execution path behind Run and every deprecated Estimate* wrapper.
func (s *System) runOn(ctx context.Context, open func() *channel.Reader, o runOptions) (Estimate, error) {
	rs, err := s.startRun(open, o)
	if err != nil {
		return Estimate{}, err
	}
	for {
		done, err := rs.Step(ctx)
		if err != nil {
			return Estimate{}, err
		}
		if done {
			break
		}
	}
	return rs.Result()
}

// validateRetry is the WithRetry domain check. The budget comparison is
// phrased positively so NaN fails it.
func validateRetry(retries int, budget float64) error {
	if retries < 0 {
		return fmt.Errorf("rfidest: negative retry count %d", retries)
	}
	if !(budget >= 0) {
		return fmt.Errorf("rfidest: retry budget must be >= 0 seconds, got %v", budget)
	}
	return nil
}

// reportFaults forwards the session's injector counters (if a fault
// injector is installed and fired) to the observer, once per run.
func (s *System) reportFaults(session *channel.Reader, o obs.Observer) {
	if o == obs.Nop {
		return
	}
	fs, ok := session.Engine.(interface{ FaultStats() obs.FaultStats })
	if !ok {
		return
	}
	if st := fs.FaultStats(); st != (obs.FaultStats{}) {
		o.Faults(st)
	}
}

// validateAccuracy is the one (ε, δ) domain check behind every public
// entry point. The check is phrased through stats.InUnitInterval so NaN —
// which passes a naive `<= 0 || >= 1` rejection because both comparisons
// are false — is rejected along with ±Inf and out-of-range values.
func validateAccuracy(epsilon, delta float64) error {
	if !stats.InUnitInterval(epsilon) || !stats.InUnitInterval(delta) {
		return fmt.Errorf("rfidest: epsilon and delta must be in (0, 1), got (%v, %v)", epsilon, delta)
	}
	return nil
}

// RunBFCEDetail is Run restricted to BFCE, returning the protocol's
// internal diagnostics alongside the estimate. WithEstimator selecting
// anything but BFCE is an error; the other options behave as in Run.
func (s *System) RunBFCEDetail(ctx context.Context, opts ...Option) (BFCEDetail, error) {
	o := defaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxbg documented nil-ctx convenience default
	}
	if err := ctx.Err(); err != nil {
		return BFCEDetail{}, err
	}
	if o.estimator != "BFCE" {
		return BFCEDetail{}, fmt.Errorf("rfidest: RunBFCEDetail runs BFCE only, got estimator %q", o.estimator)
	}
	if err := validateAccuracy(o.epsilon, o.delta); err != nil {
		return BFCEDetail{}, err
	}
	if err := validateRetry(o.retries, o.retryBudget); err != nil {
		return BFCEDetail{}, err
	}
	if err := validateTimeout(o.timeout); err != nil {
		return BFCEDetail{}, err
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	est, err := core.New(core.Config{Epsilon: o.epsilon, Delta: o.delta})
	if err != nil {
		return BFCEDetail{}, err
	}
	session := s.session
	if o.hasSalt {
		salt := o.salt
		session = func() *channel.Reader { return s.sessionAt(salt) }
	}
	r := session()
	instrumented := o.observer != obs.Nop
	if instrumented {
		r.SetObserver(o.observer)
		o.observer.SessionOpen("BFCE")
	}
	res, err := est.EstimateRetry(ctx, r, core.RetryPolicy{MaxRetries: o.retries, BudgetSeconds: o.retryBudget})
	if instrumented {
		for i := 1; i <= res.Retries; i++ {
			o.observer.Retry("BFCE", i)
		}
		if o.retries > 0 && (res.Saturated || !res.Feasible) {
			o.observer.Degraded("BFCE")
		}
	}
	if instrumented {
		o.observer.SessionClose(obs.SessionStats{
			Estimator:        "BFCE",
			Estimate:         res.Estimate,
			Rounds:           1,
			Slots:            res.Cost.TagSlots,
			ReaderBits:       res.Cost.ReaderBits,
			Seconds:          res.Seconds,
			TagTransmissions: r.TagTransmissions(),
			Guarded:          res.Feasible,
			Err:              err != nil,
		})
	}
	if err != nil {
		return BFCEDetail{}, err
	}
	out := BFCEDetail{
		Estimate: Estimate{
			N:                res.Estimate,
			Seconds:          res.Seconds,
			Slots:            res.Cost.TagSlots,
			ReaderBits:       res.Cost.ReaderBits,
			Rounds:           1 + res.Retries,
			Guarded:          res.Feasible,
			TagTransmissions: r.TagTransmissions(),
			Saturated:        res.Saturated,
			Retries:          res.Retries,
		},
		Rough:       res.Rough,
		LowerBound:  res.LowerBound,
		ProbePn:     res.PsNum,
		OptimalPn:   res.PoNum,
		ProbeRounds: res.ProbeRounds,
		Feasible:    res.Feasible,
		Saturated:   res.Saturated,
	}
	s.reportFaults(r, o.observer)
	if instrumented && s.n > 0 {
		o.observer.EstimateError(stats.RelError(out.Estimate.N, float64(s.n)))
	}
	return out, nil
}
