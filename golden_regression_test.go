package rfidest_test

// The golden grid itself lives in internal/goldengrid so every replay
// harness (this file, the scheduler tests, the fleet equivalence tests)
// pins against one table. This file keeps the original contract: the
// deprecated EstimateWithSalt entry point must reproduce every field of
// every Estimate exactly.

import (
	"testing"

	"rfidest"
	"rfidest/internal/goldengrid"
)

// goldenSystems lazily instantiates the grid's deployments, one per key.
func goldenSystems(t *testing.T) func(key string) *rfidest.System {
	t.Helper()
	systems := make(map[string]*rfidest.System)
	return func(key string) *rfidest.System {
		sys, ok := systems[key]
		if !ok {
			var err error
			sys, err = goldengrid.NewSystem(key)
			if err != nil {
				t.Fatal(err)
			}
			systems[key] = sys
		}
		return sys
	}
}

func TestEstimateWithSaltGolden(t *testing.T) {
	system := goldenSystems(t)
	for _, c := range goldengrid.Cases() {
		got, err := system(c.System).EstimateWithSalt(c.Estimator, goldengrid.Epsilon, goldengrid.Delta, c.Salt)
		if err != nil {
			t.Errorf("%s/%s/0x%x: %v", c.System, c.Estimator, c.Salt, err)
			continue
		}
		if got != c.Want {
			t.Errorf("%s/%s/0x%x:\n got  %+v\n want %+v", c.System, c.Estimator, c.Salt, got, c.Want)
		}
	}
}
