package rfidest

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentSharedSystem drives many goroutines of estimation calls
// against single shared Systems — the multi-reader deployment workload
// (paper §III-A) in which independent sessions are in flight at once. It
// exercises every System variant (tag-level, synthetic, noisy, merged) and
// asserts every call succeeds with a sane estimate. Under `go test -race`
// this test also proves the session-counter contract: on code that bumps
// the counter without synchronization it fails with a race report.
func TestConcurrentSharedSystem(t *testing.T) {
	const n = 20000
	base := NewSystem(n, WithSeed(101))
	other := NewSystem(n, WithSeed(103), WithDistribution(Normal))
	merged, err := Merge(2*n, base, other)
	if err != nil {
		t.Fatal(err)
	}
	systems := map[string]*System{
		"tag-level": base,
		"synthetic": NewSystem(n, WithSeed(105), WithSynthetic()),
		"noisy":     NewSystem(n, WithSeed(107), WithNoise(0.001, 0.001)),
		"merged":    merged,
	}

	const goroutines = 32
	const callsPer = 3
	for name, sys := range systems {
		sys := sys
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, goroutines*callsPer)
			ests := make(chan float64, goroutines*callsPer)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for c := 0; c < callsPer; c++ {
						var est Estimate
						var err error
						if (g+c)%2 == 0 {
							est, err = sys.EstimateBFCE(0.1, 0.1)
						} else {
							est, err = sys.EstimateWith("BFCE", 0.1, 0.1)
						}
						if err != nil {
							errs <- err
							continue
						}
						ests <- est.N
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			close(ests)
			for err := range errs {
				t.Fatal(err)
			}
			truth := float64(sys.N())
			count, bad := 0, 0
			for n := range ests {
				count++
				if math.Abs(n-truth)/truth > 0.5 {
					bad++
				}
			}
			if count != goroutines*callsPer {
				t.Fatalf("got %d estimates, want %d", count, goroutines*callsPer)
			}
			// (ε, δ) = (0.1, 0.1) at a 50% tolerance: any violation at all
			// indicates a correctness problem, not statistical noise.
			if bad > 0 {
				t.Fatalf("%d/%d concurrent estimates off by >50%%", bad, count)
			}
		})
	}
}

// TestConcurrentSaltedSessions checks that salt-addressed estimation is
// both safe under concurrency and bit-identical to the same salts applied
// sequentially — the property the fleet runner's determinism rests on.
func TestConcurrentSaltedSessions(t *testing.T) {
	sys := NewSystem(30000, WithSeed(211), WithSynthetic())
	const calls = 64

	seq := make([]float64, calls)
	for i := range seq {
		est, err := sys.EstimateWithSalt("BFCE", 0.1, 0.1, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = est.N
	}

	conc := make([]float64, calls)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			est, err := sys.EstimateWithSalt("BFCE", 0.1, 0.1, uint64(i))
			if err != nil {
				t.Error(err)
				return
			}
			conc[i] = est.N
		}(i)
	}
	wg.Wait()
	for i := range seq {
		if seq[i] != conc[i] {
			t.Fatalf("salt %d: sequential %v != concurrent %v", i, seq[i], conc[i])
		}
	}
}
